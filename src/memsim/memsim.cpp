#include "memsim/memsim.hpp"

#include <algorithm>
#include <cmath>

namespace incore::memsim {

namespace {
constexpr double kLine = 64.0;
constexpr double kPageLines = 4096.0 / 64.0;  // streaming detector restarts
                                              // at page boundaries
}  // namespace

MemSystemConfig preset(uarch::Micro micro) {
  MemSystemConfig c;
  switch (micro) {
    case uarch::Micro::NeoverseV2:
      c.name = "GCS";
      c.cores = 72;
      c.cores_per_domain = 72;  // one ccNUMA domain per superchip socket
      c.theoretical_bw_gbs = 546.0;
      c.per_core_bw_gbs = 32.0;
      c.refresh_overhead = 0.05;   // LPDDR5X
      c.turnaround_overhead = 0.107;
      c.wa = WaMechanism::AutomaticClaim;
      c.claim_detector_warmup_lines = 2;
      c.nt_partial_max = 0.0;  // explicit NT stores are as good as claims
      break;
    case uarch::Micro::GoldenCove:
      c.name = "SPR";
      c.cores = 52;
      c.cores_per_domain = 13;  // SNC-4 mode
      c.theoretical_bw_gbs = 307.0;
      c.per_core_bw_gbs = 7.0;  // store-stream concurrency bound
      c.refresh_overhead = 0.04;  // DDR5-4800, 8 channels
      c.turnaround_overhead = 0.08;
      c.wa = WaMechanism::SpecI2M;
      c.spec_i2m_threshold = 0.70;
      c.spec_i2m_full_util = 0.97;
      c.spec_i2m_max_conversion = 0.25;
      c.nt_partial_max = 0.10;  // residual WA traffic with NT stores
      c.nt_partial_threshold = 0.25;
      break;
    case uarch::Micro::Zen4:
      c.name = "Genoa";
      c.cores = 96;
      c.cores_per_domain = 96;  // NPS1
      c.theoretical_bw_gbs = 461.0;
      c.per_core_bw_gbs = 20.0;
      c.refresh_overhead = 0.06;  // DDR5-4800, 12 channels, interleaving
      c.turnaround_overhead = 0.179;
      c.wa = WaMechanism::None;  // only NT stores evade write-allocates
      c.nt_partial_max = 0.0;    // ...and they do so perfectly
      break;
  }
  return c;
}

double System::effective_peak_bw(double read_fraction) const {
  // Bus turnarounds are most frequent for balanced read/write mixes.
  double mix = 4.0 * read_fraction * (1.0 - read_fraction);
  double eff = 1.0 - cfg_.refresh_overhead - cfg_.turnaround_overhead * mix;
  return cfg_.theoretical_bw_gbs * std::max(0.1, eff);
}

double System::achieved_bw(int cores, double read_fraction) const {
  const int domains =
      (cfg_.cores + cfg_.cores_per_domain - 1) / cfg_.cores_per_domain;
  const double domain_peak = effective_peak_bw(read_fraction) / domains;
  double total = 0.0;
  int remaining = std::min(cores, cfg_.cores);
  for (int d = 0; d < domains && remaining > 0; ++d) {
    int here = std::min(remaining, cfg_.cores_per_domain);
    total += std::min(here * cfg_.per_core_bw_gbs * 2.0, domain_peak);
    remaining -= here;
  }
  return total;
}

System::DomainResult System::solve_domain(int active_cores,
                                          StoreKind kind) const {
  DomainResult r;
  if (active_cores <= 0) return r;
  const int domains =
      (cfg_.cores + cfg_.cores_per_domain - 1) / cfg_.cores_per_domain;

  // Fixed point: traffic ratio -> read fraction -> effective peak ->
  // utilization -> conversion / partial-fill rate -> traffic ratio.
  double ratio = 2.0;
  for (int iter = 0; iter < 32; ++iter) {
    double read_fraction = (ratio - 1.0) / ratio;  // reads per total traffic
    double domain_peak = effective_peak_bw(read_fraction) / domains;
    double demand = active_cores * cfg_.per_core_bw_gbs;
    r.utilization = std::min(1.0, demand / domain_peak);

    double conversion = 0.0;
    double nt_partial = 0.0;
    double new_ratio = 2.0;
    switch (kind) {
      case StoreKind::Standard:
        switch (cfg_.wa) {
          case WaMechanism::None:
            new_ratio = 2.0;
            break;
          case WaMechanism::AutomaticClaim: {
            // Streaming detector claims everything after a short warmup per
            // page: next-to-optimal independent of utilization.
            double claimed =
                1.0 - cfg_.claim_detector_warmup_lines / kPageLines;
            conversion = claimed;
            new_ratio = 2.0 - claimed;
            break;
          }
          case WaMechanism::SpecI2M: {
            double t = (r.utilization - cfg_.spec_i2m_threshold) /
                       (cfg_.spec_i2m_full_util - cfg_.spec_i2m_threshold);
            conversion =
                cfg_.spec_i2m_max_conversion * std::clamp(t, 0.0, 1.0);
            new_ratio = 2.0 - conversion;
            break;
          }
        }
        break;
      case StoreKind::NonTemporal: {
        double t = (r.utilization - cfg_.nt_partial_threshold) /
                   (0.9 - cfg_.nt_partial_threshold);
        nt_partial = cfg_.nt_partial_max * std::clamp(t, 0.0, 1.0);
        new_ratio = 1.0 + nt_partial;
        break;
      }
    }
    r.conversion = conversion;
    r.nt_partial = nt_partial;
    if (std::abs(new_ratio - ratio) < 1e-9) {
      ratio = new_ratio;
      break;
    }
    ratio = new_ratio;
  }
  return r;
}

Traffic System::run_store_benchmark(int cores, double total_bytes,
                                    StoreKind kind) const {
  Traffic t;
  cores = std::clamp(cores, 0, cfg_.cores);
  if (cores == 0 || total_bytes <= 0) return t;
  const double bytes_per_core = total_bytes / cores;

  int remaining = cores;
  while (remaining > 0) {
    const int here = std::min(remaining, cfg_.cores_per_domain);
    DomainResult dr = solve_domain(here, kind);
    const double domain_bytes = bytes_per_core * here;
    const double lines = domain_bytes / kLine;
    double read_lines = 0.0;
    switch (kind) {
      case StoreKind::Standard:
        // Non-converted stores read the line first (RFO).
        read_lines = lines * (1.0 - dr.conversion);
        break;
      case StoreKind::NonTemporal:
        // Partially filled write-combining buffers force a read-merge.
        read_lines = lines * dr.nt_partial;
        break;
    }
    t.bytes_stored += domain_bytes;
    t.bytes_read_mem += read_lines * kLine;
    t.bytes_written_mem += lines * kLine;
    remaining -= here;
  }
  return t;
}

LineTraffic line_traffic(const MemSystemConfig& cfg, StoreKind kind,
                         int line_in_stream, double utilization,
                         double conversion, double nt_partial) {
  LineTraffic lt;
  lt.write = kLine;
  switch (kind) {
    case StoreKind::Standard:
      switch (cfg.wa) {
        case WaMechanism::None:
          lt.read = kLine;
          break;
        case WaMechanism::AutomaticClaim: {
          int in_page = line_in_stream % static_cast<int>(kPageLines);
          lt.read = in_page < cfg.claim_detector_warmup_lines ? kLine : 0.0;
          break;
        }
        case WaMechanism::SpecI2M: {
          double gated =
              utilization >= cfg.spec_i2m_threshold ? conversion : 0.0;
          lt.read = kLine * (1.0 - gated);
          break;
        }
      }
      break;
    case StoreKind::NonTemporal:
      lt.read = kLine * nt_partial;
      break;
  }
  return lt;
}

}  // namespace incore::memsim
