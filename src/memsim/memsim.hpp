#pragma once
// Multi-core memory-traffic simulator: write-allocate behaviour and
// bandwidth saturation.
//
// This is the substrate for the paper's Section III case study (Fig. 4):
// a store-only benchmark whose memory traffic is metered at the (simulated)
// memory controller.  The interesting physics is the fate of a cache line
// on a write miss:
//
//   standard store, no evasion:  read-for-ownership (64 B in) + eventual
//                                write-back (64 B out)       -> ratio 2.0
//   cache-line claim:            line claimed in cache, no read -> ratio 1.0
//   non-temporal store:          write-combining buffer drains straight to
//                                memory; a *partially* filled buffer forces
//                                a read-merge at the controller.
//
// Mechanisms per microarchitecture (paper Section III):
//   Grace (Neoverse V2):  automatic cache-line claim driven by a streaming
//                         write detector -- next-to-optimal, works from one
//                         core; explicit NT stores behave the same.
//   Sapphire Rapids:      SpecI2M: the controller speculatively converts
//                         RFOs to invalid-to-modified requests, but only
//                         once the memory interface utilization crosses a
//                         threshold, and only for a bounded fraction of
//                         requests (<= ~25%).  NT stores suffer a residual
//                         ~10% read traffic from partially filled
//                         write-combining buffers under load.
//   Genoa (Zen 4):        no automatic mechanism at all; NT stores are
//                         perfect.
//
// Bandwidth saturation follows a latency/concurrency model per core capped
// by a per-NUMA-domain effective peak; the effective peak is the
// theoretical pin bandwidth reduced by DRAM protocol overheads (refresh,
// read/write bus turnarounds), which yields each chip's measured-vs-
// theoretical efficiency (Table I).

#include <cstddef>

#include "uarch/model.hpp"

namespace incore::memsim {

enum class StoreKind { Standard, NonTemporal };

enum class WaMechanism { None, AutomaticClaim, SpecI2M };

struct MemSystemConfig {
  const char* name = "?";
  int cores = 1;
  int cores_per_domain = 1;        // ccNUMA domain size
  double theoretical_bw_gbs = 100; // whole socket, all domains
  double per_core_bw_gbs = 20;     // latency/concurrency bound of one core
  // DRAM protocol overheads (fractions of the theoretical rate).
  double refresh_overhead = 0.04;
  double turnaround_overhead = 0.06;  // at a balanced read/write mix

  WaMechanism wa = WaMechanism::None;
  // SpecI2M parameters.
  double spec_i2m_threshold = 0.6;   // utilization where conversion starts
  double spec_i2m_full_util = 0.95;  // utilization of full conversion rate
  double spec_i2m_max_conversion = 0.25;
  // Automatic claim: lines of sequential stream warmup before the detector
  // engages (per 4 KiB page).
  int claim_detector_warmup_lines = 2;
  // NT-store write-combining imperfection: fraction of buffers evicted
  // partially filled once the interface is busy.
  double nt_partial_max = 0.0;
  double nt_partial_threshold = 0.3;  // utilization where partials appear
};

/// Presets for the three machines in the paper's testbed.
[[nodiscard]] MemSystemConfig preset(uarch::Micro micro);

struct Traffic {
  double bytes_stored = 0;     // useful data the cores wrote
  double bytes_read_mem = 0;   // memory controller reads (incl. RFO/merges)
  double bytes_written_mem = 0;

  /// The paper's Fig. 4 metric: actual memory traffic / stored volume.
  [[nodiscard]] double ratio() const {
    return bytes_stored > 0
               ? (bytes_read_mem + bytes_written_mem) / bytes_stored
               : 0.0;
  }
};

class System {
 public:
  explicit System(MemSystemConfig cfg) : cfg_(cfg) {}

  [[nodiscard]] const MemSystemConfig& config() const { return cfg_; }

  /// Effective sustainable bandwidth of the whole socket (GB/s) for a given
  /// read fraction of the traffic (write-heavy mixes pay more turnaround).
  [[nodiscard]] double effective_peak_bw(double read_fraction = 0.5) const;

  /// Achieved bandwidth (GB/s) with `cores` active, triad-like mix.
  [[nodiscard]] double achieved_bw(int cores, double read_fraction = 0.5) const;

  /// Memory-interface utilization of one NUMA domain with `active` cores on
  /// it, for a store-only workload with the given per-line traffic ratio.
  /// Solved self-consistently: the traffic ratio depends on utilization
  /// (SpecI2M gating) and utilization depends on traffic.
  struct DomainResult {
    double utilization = 0.0;
    double conversion = 0.0;   // fraction of stores that avoided the RFO
    double nt_partial = 0.0;   // fraction of NT lines needing a read-merge
  };
  [[nodiscard]] DomainResult solve_domain(int active_cores,
                                          StoreKind kind) const;

  /// The paper's store-only benchmark (Fig. 4): `cores` active (filling
  /// NUMA domains in order), `total_bytes` of data stored with the given
  /// store kind.  Returns the metered traffic.
  [[nodiscard]] Traffic run_store_benchmark(int cores, double total_bytes,
                                            StoreKind kind) const;

 private:
  MemSystemConfig cfg_;
};

/// Trace-level single-stream model used by the unit tests: per-line traffic
/// of the k-th line of a sequential stream.
struct LineTraffic {
  double read = 0;
  double write = 0;
};
[[nodiscard]] LineTraffic line_traffic(const MemSystemConfig& cfg,
                                       StoreKind kind, int line_in_stream,
                                       double utilization, double conversion,
                                       double nt_partial);

}  // namespace incore::memsim
