#pragma once
// Multi-core trace-level store benchmark.
//
// Complements the analytic model (memsim.hpp) and the single-core cache
// hierarchy (cachesim.hpp): N cores issue interleaved sequential store
// streams line by line; each request runs through the per-line protocol
// decision (write-allocate RFO, SpecI2M conversion, automatic claim,
// NT write-combining) and the memory controller meters actual traffic.
// The interface utilization that gates SpecI2M follows the same
// latency/concurrency estimate as the analytic model; the *per-request*
// mechanics (detector state per core, conversion pacing, accounting) are
// simulated explicitly, which the unit tests cross-validate against the
// closed-form solution.

#include "memsim/cachesim.hpp"
#include "memsim/memsim.hpp"

namespace incore::memsim {

struct MultiCoreResult {
  Traffic traffic;
  double utilization = 0.0;   // first (reference) NUMA domain
  double conversion = 0.0;    // realized SpecI2M conversion fraction
};

/// Simulates `lines_per_core` sequential store lines on each of `cores`
/// cores (filling NUMA domains in order), at line granularity.
[[nodiscard]] MultiCoreResult simulate_store_benchmark_trace(
    const MemSystemConfig& cfg, int cores, int lines_per_core,
    StoreKind kind);

}  // namespace incore::memsim
