#include "memsim/multicore.hpp"

#include <algorithm>
#include <vector>

namespace incore::memsim {

MultiCoreResult simulate_store_benchmark_trace(const MemSystemConfig& cfg,
                                               int cores, int lines_per_core,
                                               StoreKind kind) {
  MultiCoreResult res;
  cores = std::clamp(cores, 0, cfg.cores);
  if (cores == 0 || lines_per_core <= 0) return res;

  const int domains =
      (cfg.cores + cfg.cores_per_domain - 1) / cfg.cores_per_domain;

  // Per-core protocol state.
  struct CoreState {
    ClaimDetector detector{2};
    std::uint64_t next_line = 0;
    // SpecI2M conversion pacing: deterministic error-diffusion so the
    // realized conversion fraction matches the controller's target exactly.
    double convert_credit = 0.0;
  };
  std::vector<CoreState> state;
  state.reserve(static_cast<std::size_t>(cores));
  for (int c = 0; c < cores; ++c) {
    CoreState cs;
    cs.detector = ClaimDetector(cfg.claim_detector_warmup_lines);
    // Each core streams its own 1 GiB-aligned region.
    cs.next_line = static_cast<std::uint64_t>(c) << 24;
    state.push_back(cs);
  }

  System analytic(cfg);
  double converted_lines = 0;
  double considered_lines = 0;

  int remaining = cores;
  int core_base = 0;
  bool first_domain = true;
  while (remaining > 0) {
    const int here = std::min(remaining, cfg.cores_per_domain);
    // Interface utilization and the controller's conversion / partial-fill
    // targets for this domain (same estimate as the analytic model).
    System::DomainResult dr = analytic.solve_domain(here, kind);
    if (first_domain) {
      res.utilization = dr.utilization;
      first_domain = false;
    }

    // Interleave the cores of this domain line by line.
    for (int l = 0; l < lines_per_core; ++l) {
      for (int c = core_base; c < core_base + here; ++c) {
        CoreState& cs = state[static_cast<std::size_t>(c)];
        const std::uint64_t line = cs.next_line++;
        res.traffic.bytes_stored += 64;
        res.traffic.bytes_written_mem += 64;
        switch (kind) {
          case StoreKind::NonTemporal: {
            // Partial write-combining fills force a read-merge.
            cs.convert_credit += dr.nt_partial;
            if (cs.convert_credit >= 1.0) {
              cs.convert_credit -= 1.0;
              res.traffic.bytes_read_mem += 64;
            }
            break;
          }
          case StoreKind::Standard:
            switch (cfg.wa) {
              case WaMechanism::None:
                res.traffic.bytes_read_mem += 64;  // RFO
                break;
              case WaMechanism::AutomaticClaim:
                if (!cs.detector.should_claim(line))
                  res.traffic.bytes_read_mem += 64;
                break;
              case WaMechanism::SpecI2M: {
                considered_lines += 1;
                cs.convert_credit += dr.conversion;
                if (cs.convert_credit >= 1.0) {
                  cs.convert_credit -= 1.0;
                  converted_lines += 1;  // I2M: no read
                } else {
                  res.traffic.bytes_read_mem += 64;
                }
                break;
              }
            }
            break;
        }
      }
    }
    core_base += here;
    remaining -= here;
  }
  (void)domains;
  res.conversion =
      considered_lines > 0 ? converted_lines / considered_lines : 0.0;
  return res;
}

}  // namespace incore::memsim
