#include "memsim/cachesim.hpp"

#include <algorithm>

namespace incore::memsim {

CacheLevel::CacheLevel(const CacheConfig& cfg) : cfg_(cfg) {
  const std::size_t lines = std::max<std::size_t>(
      1, cfg.size_bytes / static_cast<std::size_t>(cfg.line_bytes));
  sets_ = std::max<std::size_t>(1, lines / static_cast<std::size_t>(cfg.ways));
  lines_.assign(sets_ * static_cast<std::size_t>(cfg.ways), Line{});
}

CacheLevel::Line* CacheLevel::find(std::uint64_t line_addr) {
  const std::uint64_t set = line_addr % sets_;
  const std::uint64_t tag = line_addr / sets_;
  for (int w = 0; w < cfg_.ways; ++w) {
    Line& l = lines_[set * static_cast<std::size_t>(cfg_.ways) +
                     static_cast<std::size_t>(w)];
    if (l.valid && l.tag == tag) return &l;
  }
  return nullptr;
}

bool CacheLevel::probe(std::uint64_t line_addr, bool make_dirty) {
  ++tick_;
  if (Line* l = find(line_addr)) {
    ++stats_.hits;
    l->lru = tick_;
    l->dirty |= make_dirty;
    return true;
  }
  ++stats_.misses;
  return false;
}

void CacheLevel::insert(std::uint64_t line_addr, bool dirty, Evicted* evicted) {
  ++tick_;
  const std::uint64_t set = line_addr % sets_;
  const std::uint64_t tag = line_addr / sets_;
  Line* victim = nullptr;
  for (int w = 0; w < cfg_.ways; ++w) {
    Line& l = lines_[set * static_cast<std::size_t>(cfg_.ways) +
                     static_cast<std::size_t>(w)];
    if (!l.valid) {
      victim = &l;
      break;
    }
    if (victim == nullptr || l.lru < victim->lru) victim = &l;
  }
  if (evicted != nullptr) {
    evicted->valid = victim->valid;
    evicted->dirty = victim->dirty;
    evicted->line_addr = victim->tag * sets_ + set;
  }
  if (victim->valid) ++stats_.evictions;
  victim->valid = true;
  victim->tag = tag;
  victim->dirty = dirty;
  victim->lru = tick_;
}

bool CacheLevel::remove(std::uint64_t line_addr, bool* was_dirty) {
  if (Line* l = find(line_addr)) {
    if (was_dirty != nullptr) *was_dirty = l->dirty;
    l->valid = false;
    l->dirty = false;
    return true;
  }
  return false;
}

std::vector<CacheLevel::Evicted> CacheLevel::drain() {
  std::vector<Evicted> out;
  for (std::size_t s = 0; s < sets_; ++s) {
    for (int w = 0; w < cfg_.ways; ++w) {
      Line& l = lines_[s * static_cast<std::size_t>(cfg_.ways) +
                       static_cast<std::size_t>(w)];
      if (l.valid) {
        out.push_back(Evicted{true, l.dirty, l.tag * sets_ + s});
        l.valid = false;
        l.dirty = false;
      }
    }
  }
  return out;
}

bool ClaimDetector::should_claim(std::uint64_t line_addr) {
  constexpr std::uint64_t kLinesPerPage = 4096 / 64;
  const bool sequential = line_addr == last_line_ + 1 && last_line_ != ~0ull;
  const bool page_start = line_addr % kLinesPerPage == 0;
  if (!sequential || page_start) run_ = 0;
  const bool claim = run_ >= warmup_;
  ++run_;
  last_line_ = line_addr;
  return claim;
}

CacheHierarchy::CacheHierarchy(const CacheConfig& l1, const CacheConfig& l2,
                               const CacheConfig& l3, WaMechanism wa,
                               int claim_warmup_lines)
    : line_bytes_(l1.line_bytes), wa_(wa), detector_(claim_warmup_lines) {
  levels_.reserve(3);
  levels_.emplace_back(l1);
  levels_.emplace_back(l2);
  levels_.emplace_back(l3);
}

void CacheHierarchy::place(int idx, std::uint64_t line_addr, bool dirty) {
  if (idx >= static_cast<int>(levels_.size())) {
    if (dirty) ++mem_.lines_written;
    return;
  }
  CacheLevel::Evicted ev;
  levels_[static_cast<std::size_t>(idx)].insert(line_addr, dirty, &ev);
  if (ev.valid) place(idx + 1, ev.line_addr, ev.dirty);
}

void CacheHierarchy::access(std::uint64_t line_addr, bool is_store,
                            bool claim) {
  // L1 hit?
  if (levels_[0].probe(line_addr, is_store)) return;
  // Hit in a lower level: promote to L1 (exclusive hierarchy).
  for (std::size_t i = 1; i < levels_.size(); ++i) {
    CacheLevel& lvl = levels_[i];
    if (lvl.probe(line_addr, false)) {
      bool dirty = false;
      lvl.remove(line_addr, &dirty);
      place(0, line_addr, dirty || is_store);
      return;
    }
  }
  // Miss everywhere: claim allocates without a memory read.
  if (claim) {
    ++claimed_lines_;
  } else {
    ++mem_.lines_read;
  }
  place(0, line_addr, is_store);
}

void CacheHierarchy::load(std::uint64_t addr) {
  access(addr / static_cast<std::uint64_t>(line_bytes_), false, false);
}

void CacheHierarchy::store(std::uint64_t addr, StoreKind kind) {
  const std::uint64_t line = addr / static_cast<std::uint64_t>(line_bytes_);
  ++stored_lines_;
  if (kind == StoreKind::NonTemporal) {
    ++mem_.lines_written;  // full-line write combining straight to memory
    return;
  }
  const bool claim =
      wa_ == WaMechanism::AutomaticClaim && detector_.should_claim(line);
  access(line, true, claim);
}

void CacheHierarchy::drain() {
  for (auto& lvl : levels_) {
    for (const auto& ev : lvl.drain()) {
      if (ev.dirty) ++mem_.lines_written;
    }
  }
}

double CacheHierarchy::store_stream_ratio(std::uint64_t base,
                                          std::size_t bytes, StoreKind kind) {
  const auto lb = static_cast<std::uint64_t>(line_bytes_);
  const std::uint64_t lines = bytes / lb;
  for (std::uint64_t i = 0; i < lines; ++i) store(base + i * lb, kind);
  drain();
  const double stored = static_cast<double>(lines);
  const double traffic =
      static_cast<double>(mem_.lines_read + mem_.lines_written);
  return stored > 0 ? traffic / stored : 0.0;
}

CacheHierarchy CacheHierarchy::for_machine(uarch::Micro micro) {
  CacheConfig l1, l2, l3;
  WaMechanism wa = preset(micro).wa;
  switch (micro) {
    case uarch::Micro::NeoverseV2:
      l1 = {64 * 1024, 4, 64};
      l2 = {1024 * 1024, 8, 64};
      l3 = {114ull * 1024 * 1024 / 72, 12, 64};  // per-core share
      break;
    case uarch::Micro::GoldenCove:
      l1 = {48 * 1024, 12, 64};
      l2 = {2 * 1024 * 1024, 16, 64};
      l3 = {105ull * 1024 * 1024 / 52, 15, 64};
      break;
    case uarch::Micro::Zen4:
      l1 = {32 * 1024, 8, 64};
      l2 = {1024 * 1024, 8, 64};
      l3 = {1152ull * 1024 * 1024 / 96, 16, 64};
      break;
  }
  // SpecI2M is a bandwidth-gated controller feature (modeled analytically);
  // a single core below saturation keeps its write-allocates.
  return CacheHierarchy(l1, l2, l3,
                        wa == WaMechanism::SpecI2M ? WaMechanism::None : wa,
                        preset(micro).claim_detector_warmup_lines);
}

CacheHierarchy CacheHierarchy::for_model(const uarch::MachineModel& mm) {
  const uarch::CacheParams& c = mm.cache;
  const CacheConfig l1{static_cast<std::size_t>(c.l1_bytes), c.l1_ways,
                       c.line_bytes};
  const CacheConfig l2{static_cast<std::size_t>(c.l2_bytes), c.l2_ways,
                       c.line_bytes};
  const CacheConfig l3{static_cast<std::size_t>(c.l3_bytes), c.l3_ways,
                       c.line_bytes};
  const WaMechanism wa = preset(mm.micro()).wa;
  return CacheHierarchy(l1, l2, l3,
                        wa == WaMechanism::SpecI2M ? WaMechanism::None : wa,
                        preset(mm.micro()).claim_detector_warmup_lines);
}

}  // namespace incore::memsim
