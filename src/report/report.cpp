#include "report/report.hpp"

#include <algorithm>
#include <cmath>

#include "support/strings.hpp"

namespace incore::report {

using support::format;

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      std::string cell = c < row.size() ? row[c] : "";
      out += ' ' + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    return out + '\n';
  };
  std::string out = render_row(header_);
  std::string rule = "|";
  for (std::size_t c = 0; c < header_.size(); ++c)
    rule += std::string(width[c] + 2, '-') + "|";
  out += rule + '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string render_rpe_histogram(const support::Histogram& h,
                                 const std::string& title,
                                 int max_bar_width) {
  std::string out = title + "  (n=" + std::to_string(h.total()) + ")\n";
  std::size_t max_count = 1;
  for (std::size_t b = 0; b < h.bucket_count(); ++b)
    max_count = std::max(max_count, h.count(b));
  double scale =
      max_count > static_cast<std::size_t>(max_bar_width)
          ? static_cast<double>(max_bar_width) / static_cast<double>(max_count)
          : 1.0;
  for (std::size_t b = 0; b < h.bucket_count(); ++b) {
    double lo = h.bucket_lo(b);
    double hi = h.bucket_hi(b);
    const bool leftmost = b == 0;
    std::string label =
        leftmost ? std::string("   <= -1.0 ")
                 : format("%+4.1f..%+4.1f", lo, hi);
    const char* marker = std::abs(lo) < 1e-9 ? ">" : " ";  // the zero line
    int bar = static_cast<int>(
        std::ceil(scale * static_cast<double>(h.count(b))));
    out += format("%s %s |%s%s\n", marker, label.c_str(),
                  std::string(static_cast<std::size_t>(bar), '#').c_str(),
                  h.count(b) ? format(" %zu", h.count(b)).c_str() : "");
  }
  return out;
}

RpeSummary summarize_rpe(const std::vector<double>& rpes) {
  RpeSummary s;
  s.total = static_cast<int>(rpes.size());
  if (rpes.empty()) return s;
  int right = 0, in10 = 0, in20 = 0;
  double under_sum = 0.0, abs_sum = 0.0;
  int under_n = 0;
  // Counting epsilon: simulator predictions can tie the measurement
  // exactly; ties count as "right of the line" (lower bound achieved).
  constexpr double kEps = 5e-3;
  for (double r : rpes) {
    if (r >= -kEps) {
      ++right;
      under_sum += std::max(r, 0.0);
      ++under_n;
      if (r < 0.1) ++in10;
      if (r < 0.2) ++in20;
    }
    if (r <= -1.0) ++s.off_by_2x;
    abs_sum += std::abs(r);
  }
  s.fraction_right = static_cast<double>(right) / s.total;
  s.fraction_in10 = static_cast<double>(in10) / s.total;
  s.fraction_in20 = static_cast<double>(in20) / s.total;
  s.mean_under_rpe = under_n ? under_sum / under_n : 0.0;
  s.mean_abs_rpe = abs_sum / s.total;
  return s;
}

}  // namespace incore::report
