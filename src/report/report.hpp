#pragma once
// Presentation helpers for the bench harnesses: aligned ASCII tables and
// the paper's Fig. 3-style relative-prediction-error histograms.

#include <string>
#include <vector>

#include "support/stats.hpp"

namespace incore::report {

/// Column-aligned ASCII table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Renders with column separators and a header rule.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a two-sided RPE histogram: buckets of `bucket_width` from -1 to
/// +1 with a marked zero line, one '#' per sample (scaled when dense).
/// Mirrors the reading of the paper's Fig. 3: bars right of the zero line
/// are predictions *faster* than the measurement (desired for a lower
/// bound), bars left are slower predictions; the leftmost bucket collects
/// everything off by more than a factor of two.
[[nodiscard]] std::string render_rpe_histogram(const support::Histogram& h,
                                               const std::string& title,
                                               int max_bar_width = 60);

/// Summary line used by the Fig. 3 bench: share of predictions right of
/// zero, within +10% / +20%, and the mean under-prediction error.
struct RpeSummary {
  double fraction_right = 0;     // prediction faster or equal
  double fraction_in10 = 0;      // 0 <= rpe < 0.1
  double fraction_in20 = 0;      // 0 <= rpe < 0.2
  double mean_under_rpe = 0;     // mean of rpe >= 0 samples
  double mean_abs_rpe = 0;
  int off_by_2x = 0;             // rpe <= -1.0 (leftmost bucket)
  int total = 0;
};
[[nodiscard]] RpeSummary summarize_rpe(const std::vector<double>& rpes);

}  // namespace incore::report
