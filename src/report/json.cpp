#include "report/json.hpp"

#include "support/strings.hpp"

namespace incore::report {

using support::format;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_json(const analysis::Report& rep) {
  std::string out = "{\n";
  out += format("  \"machine\": \"%s\",\n", rep.model().name().c_str());
  out += format("  \"throughput_cycles\": %.6g,\n", rep.throughput_cycles());
  out += format("  \"critical_path_cycles\": %.6g,\n",
                rep.critical_path_cycles());
  out += format("  \"loop_carried_cycles\": %.6g,\n",
                rep.loop_carried_cycles());
  out += format("  \"predicted_cycles\": %.6g,\n", rep.predicted_cycles());
  out += "  \"ports\": [";
  const auto& names = rep.model().ports();
  for (std::size_t p = 0; p < names.size(); ++p) {
    out += format("%s\"%s\"", p ? ", " : "", names[p].c_str());
  }
  out += "],\n  \"port_load\": [";
  for (std::size_t p = 0; p < rep.port_load().size(); ++p) {
    out += format("%s%.6g", p ? ", " : "", rep.port_load()[p]);
  }
  out += "],\n  \"instructions\": [\n";
  const auto& instrs = rep.instructions();
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    const auto& ir = instrs[i];
    out += format(
        "    {\"text\": \"%s\", \"form\": \"%s\", \"latency\": %.6g, "
        "\"inverse_throughput\": %.6g, \"on_lcd\": %s, "
        "\"used_fallback\": %s, \"port_pressure\": [",
        json_escape(ir.text).c_str(), json_escape(ir.form).c_str(),
        ir.latency, ir.inverse_throughput, ir.on_lcd ? "true" : "false",
        ir.used_fallback ? "true" : "false");
    for (std::size_t p = 0; p < ir.port_pressure.size(); ++p) {
      out += format("%s%.4g", p ? ", " : "", ir.port_pressure[p]);
    }
    out += "]}";
    out += i + 1 < instrs.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

namespace {

/// Shared port-keyed array rendering: ["P0", ...] alongside values.
std::string ports_and_values(const uarch::MachineModel& mm,
                             const std::vector<double>& values,
                             const char* values_key) {
  std::string out = "  \"ports\": [";
  const auto& names = mm.ports();
  for (std::size_t p = 0; p < names.size(); ++p) {
    out += format("%s\"%s\"", p ? ", " : "", names[p].c_str());
  }
  out += format("],\n  \"%s\": [", values_key);
  for (std::size_t p = 0; p < values.size(); ++p) {
    out += format("%s%.6g", p ? ", " : "", values[p]);
  }
  out += "],\n";
  return out;
}

}  // namespace

std::string to_json(const mca::Result& res, const uarch::MachineModel& mm) {
  std::string out = "{\n";
  out += format("  \"machine\": \"%s\",\n  \"model\": \"mca\",\n",
                mm.name().c_str());
  out += ports_and_values(mm, res.resource_pressure, "resource_pressure");
  out += format("  \"cycles_per_iteration\": %.6g\n}\n",
                res.cycles_per_iteration);
  return out;
}

std::string to_json(const exec::Measurement& meas,
                    const uarch::MachineModel& mm) {
  std::string out = "{\n";
  out += format("  \"machine\": \"%s\",\n  \"model\": \"testbed\",\n",
                mm.name().c_str());
  out += ports_and_values(mm, meas.port_utilization, "port_utilization");
  out += format(
      "  \"backpressure_cycles\": %llu,\n  \"cycles_per_iteration\": "
      "%.6g\n}\n",
      static_cast<unsigned long long>(meas.backpressure_cycles),
      meas.cycles_per_iteration);
  return out;
}

std::string to_json(const verify::DiagnosticSink& sink) {
  using verify::Severity;
  std::string out = "{\n";
  out += format("  \"errors\": %zu,\n  \"warnings\": %zu,\n"
                "  \"notes\": %zu,\n",
                sink.errors(), sink.warnings(), sink.count(Severity::Note));
  out += "  \"diagnostics\": [\n";
  const auto& diags = sink.diagnostics();
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const verify::Diagnostic& d = diags[i];
    out += format(
        "    {\"severity\": \"%s\", \"code\": \"%s\", \"location\": \"%s\", "
        "\"message\": \"%s\", \"notes\": [",
        verify::to_string(d.severity), json_escape(d.code).c_str(),
        json_escape(d.location).c_str(), json_escape(d.message).c_str());
    for (std::size_t n = 0; n < d.notes.size(); ++n) {
      out += format("%s\"%s\"", n ? ", " : "",
                    json_escape(d.notes[n]).c_str());
    }
    out += "]}";
    out += i + 1 < diags.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace incore::report
