#pragma once
// Machine-readable (JSON) export of analysis results, for integration into
// external tooling (CI dashboards, plotting).  Hand-rolled writer -- the
// output grammar is small and no third-party dependency is warranted.

#include <string>

#include "analysis/analyze.hpp"

namespace incore::report {

/// Serializes an analysis report: bounds, per-port loads, per-instruction
/// rows (form, latency, reciprocal throughput, port pressure, LCD flag).
[[nodiscard]] std::string to_json(const analysis::Report& rep);

/// JSON string escaping helper (exposed for tests).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace incore::report
