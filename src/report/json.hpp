#pragma once
// Machine-readable (JSON) export of analysis results, for integration into
// external tooling (CI dashboards, plotting).  Hand-rolled writer -- the
// output grammar is small and no third-party dependency is warranted.

#include <string>

#include "analysis/analyze.hpp"
#include "exec/exec.hpp"
#include "mca/mca.hpp"
#include "verify/diagnostics.hpp"

namespace incore::report {

/// Serializes an analysis report: bounds, per-port loads, per-instruction
/// rows (form, latency, reciprocal throughput, port pressure, LCD and
/// mnemonic-fallback flags).
[[nodiscard]] std::string to_json(const analysis::Report& rep);

/// Serializes the LLVM-MCA-style comparator result: cycles/iteration plus
/// the per-port resource pressure (port names supplied by the caller's
/// machine model via `mm`).
[[nodiscard]] std::string to_json(const mca::Result& res,
                                  const uarch::MachineModel& mm);

/// Serializes a testbed measurement: cycles/iteration, per-port
/// utilization and back-pressure cycles.
[[nodiscard]] std::string to_json(const exec::Measurement& meas,
                                  const uarch::MachineModel& mm);

/// Serializes verifier diagnostics: severity tallies plus one object per
/// diagnostic (severity, code, location, message, notes).
[[nodiscard]] std::string to_json(const verify::DiagnosticSink& sink);

/// JSON string escaping helper (exposed for tests).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace incore::report
