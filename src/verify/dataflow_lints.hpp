#pragma once
// Dataflow-driven kernel lints (VK007..VK012).
//
// These checks run on the dataflow engine's def-use chains, liveness and
// alias summaries rather than on syntactic operand positions, so they are
// machine-model-free: dead writes never observed in steady state, partial-
// register writes that serialize iterations, store-to-load pairs whose
// widths defeat forwarding, flag recurrences, zero idioms whose syntactic
// self-dependency the renamer discards, and accumulator / induction-
// variable detection over the live-in/live-out sets.
//
// Called from lint_program(); exposed separately so tests and tools can
// lint a kernel without resolving it against any machine model.

#include <string_view>

#include "asmir/ir.hpp"
#include "verify/diagnostics.hpp"

namespace incore::verify {

/// Runs VK007..VK012 over `prog`.  Returns the number of diagnostics
/// emitted.
std::size_t lint_dataflow(const asmir::Program& prog, std::string_view name,
                          DiagnosticSink& sink);

}  // namespace incore::verify
