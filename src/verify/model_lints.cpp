#include "verify/model_lints.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <set>

#include "analysis/portpressure.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace incore::verify {

using support::format;
using uarch::InstrPerf;
using uarch::MachineModel;
using uarch::PortUse;

const char* to_string(ResolutionKind k) {
  switch (k) {
    case ResolutionKind::Exact: return "exact";
    case ResolutionKind::Decomposed: return "decomposed";
    case ResolutionKind::Fallback: return "fallback";
    case ResolutionKind::Missing: return "missing";
  }
  return "?";
}

ResolutionKind classify_resolution(const MachineModel& mm,
                                   const asmir::Instruction& ins) {
  try {
    const uarch::Resolved r = mm.resolve(ins);
    if (r.used_fallback) return ResolutionKind::Fallback;
    if (r.decomposed) return ResolutionKind::Decomposed;
    return ResolutionKind::Exact;
  } catch (const support::UnknownInstruction&) {
    return ResolutionKind::Missing;
  }
}

namespace {

std::string form_location(const MachineModel& mm, const std::string& form) {
  return format("model '%s', form '%s'", mm.name().c_str(), form.c_str());
}

/// Best achievable reciprocal throughput of one instruction instance: the
/// minimized max-port load of its occupancy groups under optimal fractional
/// balancing (same solver the analyzer uses for whole loop bodies).
double optimal_inverse_throughput(const InstrPerf& perf, int port_count) {
  std::vector<analysis::OccupancyGroup> groups;
  groups.reserve(perf.port_uses.size());
  for (const PortUse& pu : perf.port_uses) {
    groups.push_back(analysis::OccupancyGroup{pu.mask, pu.cycles, -1});
  }
  return analysis::balance_ports(groups, port_count).bottleneck_cycles;
}

}  // namespace

std::size_t lint_model(const MachineModel& mm, DiagnosticSink& sink,
                       const ModelLintOptions& opt) {
  const std::size_t before = sink.diagnostics().size();
  const int port_count = static_cast<int>(mm.port_count());
  const uarch::PortMask machine_mask =
      port_count >= 32 ? ~uarch::PortMask{0}
                       : ((uarch::PortMask{1} << port_count) - 1);

  std::vector<std::string> forms = mm.forms();
  std::sort(forms.begin(), forms.end());

  // First operand-ful token per mnemonic, for the shadowing lint.
  std::set<std::string> mnemonics_with_operands;
  for (const std::string& form : forms) {
    auto space = form.find(' ');
    if (space != std::string::npos)
      mnemonics_with_operands.insert(form.substr(0, space));
  }

  for (const std::string& form : forms) {
    const InstrPerf* perf = mm.find(form);
    const std::string loc = form_location(mm, form);

    bool structurally_sound = true;
    for (std::size_t g = 0; g < perf->port_uses.size(); ++g) {
      const PortUse& pu = perf->port_uses[g];
      if (pu.mask == 0) {
        sink.report(Severity::Error, "VM002", loc,
                    format("occupancy group %zu has an empty port set", g));
        structurally_sound = false;
      } else if ((pu.mask & ~machine_mask) != 0) {
        sink.report(
            Severity::Error, "VM001", loc,
            format("occupancy group %zu references ports outside the "
                   "machine (mask 0x%x, machine has %d ports)",
                   g, pu.mask & ~machine_mask, port_count));
        structurally_sound = false;
      }
      if (pu.cycles <= 0.0 || !std::isfinite(pu.cycles)) {
        sink.report(Severity::Error, "VM003", loc,
                    format("occupancy group %zu has non-positive occupancy "
                           "%.3f cycles",
                           g, pu.cycles));
        structurally_sound = false;
      }
    }

    const std::pair<double, const char*> timings[] = {
        {perf->inverse_throughput, "inverse throughput"},
        {perf->latency, "latency"},
        {perf->uops, "uops"},
        {perf->accumulator_latency, "accumulator latency"}};
    for (auto [value, what] : timings) {
      if (!std::isfinite(value) || value < 0.0) {
        sink.report(Severity::Error, "VM009", loc,
                    format("%s is %g (must be finite and non-negative)", what,
                           value));
        structurally_sound = false;
      }
    }

    if (structurally_sound && !perf->port_uses.empty()) {
      const double optimum = optimal_inverse_throughput(*perf, port_count);
      if (perf->inverse_throughput + opt.throughput_tolerance < optimum) {
        sink.report(
            Severity::Error, "VM004", loc,
            format("declared inverse throughput %.4f cy is below the best "
                   "achievable %.4f cy under optimal port balancing",
                   perf->inverse_throughput, optimum),
            {"the occupancy groups cannot drain faster than the "
             "water-filling optimum; raise the inverse throughput or widen "
             "the port sets"});
      }
    }

    if (perf->accumulator_latency > perf->latency) {
      sink.report(
          Severity::Error, "VM005", loc,
          format("accumulator latency %.2f cy exceeds result latency %.2f cy",
                 perf->accumulator_latency, perf->latency));
    }

    if (perf->uops > 0.0 &&
        perf->uops + 1e-9 < static_cast<double>(perf->port_uses.size())) {
      sink.report(
          Severity::Warning, "VM006", loc,
          format("declared %.2f uops but %zu occupancy groups (each group "
                 "needs at least one micro-op to issue)",
                 perf->uops, perf->port_uses.size()));
    }

    if (form.find(' ') == std::string::npos && form[0] != '_' &&
        mnemonics_with_operands.contains(form)) {
      sink.report(
          Severity::Note, "VM008", loc,
          "bare-mnemonic entry shadows the operand forms of the same "
          "mnemonic: any unmatched operand signature silently resolves here");
    }
  }

  for (const std::string& dup : mm.duplicate_forms()) {
    sink.report(Severity::Warning, "VM007", form_location(mm, dup),
                "form was registered more than once; the first registration "
                "is in effect",
                {"check the model builder for a copy-paste or loop overlap"});
  }

  return sink.diagnostics().size() - before;
}

std::size_t lint_cross_model_coverage(
    std::span<const CorpusEntry> corpus,
    std::span<const uarch::MachineModel* const> models, DiagnosticSink& sink) {
  const std::size_t before = sink.diagnostics().size();

  // form key -> (example instruction index into its program, entry index).
  struct Needed {
    const asmir::Instruction* ins;
    const CorpusEntry* entry;
  };
  std::map<std::string, Needed> needed;
  for (const CorpusEntry& e : corpus) {
    if (e.program == nullptr || e.target == nullptr) continue;
    for (const asmir::Instruction& ins : e.program->code) {
      needed.emplace(ins.form(), Needed{&ins, &e});
    }
  }

  std::set<std::pair<std::string, std::string>> reported;  // (model, form)
  for (const auto& [form, need] : needed) {
    const uarch::MachineModel& target = *need.entry->target;
    const ResolutionKind on_target = classify_resolution(target, *need.ins);
    if (on_target == ResolutionKind::Fallback ||
        on_target == ResolutionKind::Missing) {
      continue;  // the per-kernel lints already flag the target itself
    }
    for (const uarch::MachineModel* mm : models) {
      if (mm == nullptr || mm == &target || mm->isa() != target.isa()) continue;
      const ResolutionKind kind = classify_resolution(*mm, *need.ins);
      if (kind != ResolutionKind::Fallback && kind != ResolutionKind::Missing)
        continue;
      if (!reported.emplace(mm->name(), form).second) continue;
      sink.report(
          Severity::Warning, "VM010",
          form_location(*mm, form),
          format("form resolves '%s' here but '%s' on model '%s' (needed by "
                 "kernel '%s')",
                 to_string(kind), to_string(on_target),
                 target.name().c_str(), need.entry->name.c_str()),
          {"add the form to the weaker model or accept the degraded "
           "mnemonic-level estimate"});
    }
  }
  return sink.diagnostics().size() - before;
}

}  // namespace incore::verify
