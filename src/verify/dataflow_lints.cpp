#include "verify/dataflow_lints.hpp"

#include <set>

#include "dataflow/dataflow.hpp"
#include "support/strings.hpp"

namespace incore::verify {

namespace {

using asmir::Instruction;
using asmir::Program;
using asmir::RegClass;
using asmir::Register;
using support::format;

std::string ins_location(std::string_view name, const Instruction& ins) {
  return format("kernel '%.*s', line %d: '%s'",
                static_cast<int>(name.size()), name.data(), ins.line,
                ins.raw.c_str());
}

/// Roots whose liveness is structural, not a data recurrence.
bool is_ignored_root(const Register& r) {
  return r.cls == RegClass::Sp || r.cls == RegClass::Flags;
}

}  // namespace

std::size_t lint_dataflow(const Program& prog, std::string_view name,
                          DiagnosticSink& sink) {
  const std::size_t before = sink.diagnostics().size();
  const dataflow::Analysis df = dataflow::analyze(prog);
  const int n = static_cast<int>(prog.code.size());

  // --- VK007: dead write (never read before the next redefinition) ---
  // Only explicit register destinations count: implicit flag updates and
  // address write-backs are structural, and in steady state an unread flag
  // result is the common case, not a bug.
  for (int i = 0; i < n; ++i) {
    const Instruction& ins = prog.code[static_cast<std::size_t>(i)];
    for (const dataflow::RegWrite& w :
         df.instrs[static_cast<std::size_t>(i)].writes) {
      if (!w.dead || w.implicit || is_ignored_root(w.reg)) continue;
      sink.report(
          Severity::Warning, "VK007", ins_location(name, ins),
          format("write to '%s' is never read before the register is "
                 "redefined: the value is dead in steady state",
                 w.reg.name(prog.isa).c_str()),
          {"the instruction still occupies ports and the ROB; if the value "
           "matters only after the loop, this is fine"});
    }
  }

  // --- VK008: partial-register write serializing iterations ---
  // A partial write merges the untouched bytes/lanes from the previous
  // contents; when that merge input reaches through the back edge, every
  // iteration waits on the previous one for a value it never really uses.
  // Merging predication is excluded: its merge input is real semantics.
  for (int i = 0; i < n; ++i) {
    const Instruction& ins = prog.code[static_cast<std::size_t>(i)];
    if (ins.merging_predication) continue;
    const dataflow::InstrDataflow& id = df.instrs[static_cast<std::size_t>(i)];
    for (const dataflow::RegWrite& w : id.writes) {
      if (!w.partial) continue;
      for (const dataflow::RegRead& rd : id.reads) {
        if (rd.merge && rd.loop_carried &&
            rd.reg.root_id() == w.reg.root_id()) {
          sink.report(
              Severity::Warning, "VK008", ins_location(name, ins),
              format("partial write to '%s' merges bytes produced in the "
                     "previous iteration: a false loop-carried dependency",
                     w.reg.name(prog.isa).c_str()),
              {"use a full-width or zero-extending form (or a VEX encoding "
               "on x86) to cut the merge"});
          break;
        }
      }
    }
  }

  // --- VK009: store-to-load pair with mismatched widths ---
  // Forwarding networks handle a load fully contained in one older store;
  // a load that is wider than, or straddles, the forwarded store stalls
  // until the store drains.  Checked within the iteration and across the
  // back edge.
  for (const dataflow::MemAccess& st : df.accesses) {
    if (!st.is_store) continue;
    for (const dataflow::MemAccess& ld : df.accesses) {
      if (!ld.is_load) continue;
      const bool same_iter =
          ld.instr > st.instr &&
          df.alias(st, ld) == dataflow::Alias::MustOverlap;
      const bool next_iter =
          df.alias_next_iteration(st, ld) == dataflow::Alias::MustOverlap;
      if (!same_iter && !next_iter) continue;
      const long long shift =
          !same_iter && ld.stride_bytes ? *ld.stride_bytes : 0;
      const long long s_lo = st.effective_displacement();
      const long long s_hi = s_lo + std::max(st.width_bits / 8, 1);
      const long long l_lo = ld.effective_displacement() + shift;
      const long long l_hi = l_lo + std::max(ld.width_bits / 8, 1);
      if (s_lo <= l_lo && l_hi <= s_hi && st.width_bits == ld.width_bits)
        continue;  // exact or contained same-width forward: fast path
      if (s_lo <= l_lo && l_hi <= s_hi) continue;  // contained: forwardable
      sink.report(
          Severity::Warning, "VK009",
          ins_location(name, prog.code[static_cast<std::size_t>(ld.instr)]),
          format("load (%d bits) overlaps the store at line %d (%d bits) "
                 "without being contained in it: store-to-load forwarding "
                 "will stall",
                 ld.width_bits,
                 prog.code[static_cast<std::size_t>(st.instr)].line,
                 st.width_bits),
          {"match the access widths or separate the locations"});
    }
  }

  // --- VK010: flag-register recurrence ---
  // A flags value consumed from the previous iteration serializes the loop
  // on the flag-producing instruction (classic ADC/SBB chains).
  for (int i = 0; i < n; ++i) {
    for (const dataflow::RegRead& rd :
         df.instrs[static_cast<std::size_t>(i)].reads) {
      if (rd.reg.cls != RegClass::Flags || !rd.loop_carried) continue;
      sink.report(
          Severity::Note, "VK010",
          ins_location(name, prog.code[static_cast<std::size_t>(i)]),
          format("flags are consumed from the previous iteration (producer "
                 "at line %d): the flag register is a loop-carried "
                 "dependency",
                 prog.code[static_cast<std::size_t>(rd.def)].line));
    }
  }

  // --- VK011: zero idiom discards its syntactic input dependency ---
  for (int i = 0; i < n; ++i) {
    const dataflow::InstrDataflow& id = df.instrs[static_cast<std::size_t>(i)];
    if (id.rename != dataflow::RenameClass::ZeroIdiom) continue;
    for (const dataflow::RegRead& rd : id.reads) {
      if (rd.def == dataflow::kLiveIn) continue;
      sink.report(
          Severity::Note, "VK011",
          ins_location(name, prog.code[static_cast<std::size_t>(i)]),
          format("zero idiom: the apparent dependency on '%s' (defined at "
                 "line %d%s) is broken at rename",
                 rd.reg.name(prog.isa).c_str(),
                 prog.code[static_cast<std::size_t>(rd.def)].line,
                 rd.loop_carried ? ", previous iteration" : ""));
      break;  // one note per idiom
    }
  }

  // --- VK012: live-in register also written (accumulator detection) ---
  for (const Register& r : df.live_out) {
    if (is_ignored_root(r)) continue;
    const std::uint32_t root = r.root_id();
    // Gather the defining instructions and how they use the root.
    bool all_increment = true;
    bool all_read_self = true;
    int first_def = -1;
    for (int i = 0; i < n; ++i) {
      const dataflow::InstrDataflow& id =
          df.instrs[static_cast<std::size_t>(i)];
      bool writes_root = false;
      for (const dataflow::RegWrite& w : id.writes) {
        if (w.reg.root_id() == root) {
          writes_root = true;
          if (!w.increment) all_increment = false;
        }
      }
      if (!writes_root) continue;
      if (first_def < 0) first_def = i;
      bool reads_root = false;
      for (const dataflow::RegRead& rd : id.reads) {
        if (rd.reg.root_id() == root && !rd.merge) reads_root = true;
      }
      if (!reads_root) all_read_self = false;
    }
    if (first_def < 0) continue;
    const char* kind = all_increment          ? "induction variable"
                       : all_read_self        ? "accumulator"
                                              : "loop-carried recurrence";
    sink.report(
        Severity::Note, "VK012",
        ins_location(name, prog.code[static_cast<std::size_t>(first_def)]),
        format("register '%s' enters the iteration live and is redefined: "
               "%s (loop-carried dependency)",
               r.name(prog.isa).c_str(), kind));
  }

  return sink.diagnostics().size() - before;
}

}  // namespace incore::verify
