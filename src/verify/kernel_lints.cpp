#include "verify/kernel_lints.hpp"

#include <map>
#include <set>

#include "support/strings.hpp"
#include "verify/dataflow_lints.hpp"
#include "verify/model_lints.hpp"

namespace incore::verify {

using asmir::Instruction;
using asmir::Program;
using asmir::RegClass;
using asmir::Register;
using support::format;

namespace {

std::string ins_location(std::string_view name, const Instruction& ins) {
  return format("kernel '%.*s', line %d: '%s'",
                static_cast<int>(name.size()), name.data(), ins.line,
                ins.raw.c_str());
}

bool is_zero_register(const Program& prog, const Register& r) {
  return prog.isa == asmir::Isa::AArch64 && r.cls == RegClass::Gpr &&
         r.index == 31;
}

/// Registers whose liveness across iterations is structural rather than a
/// data recurrence: stack pointer and flags.
bool is_ignored_root(const Register& r) {
  return r.cls == RegClass::Sp || r.cls == RegClass::Flags;
}

bool is_unconditional_branch(const Program& prog, const Instruction& ins) {
  if (!ins.is_branch && ins.mnemonic != "ret" && ins.mnemonic != "retq")
    return false;
  if (prog.isa == asmir::Isa::X86_64) {
    return ins.mnemonic == "jmp" || ins.mnemonic == "jmpq" ||
           ins.mnemonic == "ret" || ins.mnemonic == "retq";
  }
  return ins.mnemonic == "b" || ins.mnemonic == "br" || ins.mnemonic == "ret";
}

}  // namespace

std::size_t lint_program(const Program& prog, const uarch::MachineModel& mm,
                         std::string_view name, DiagnosticSink& sink,
                         const KernelLintOptions& opt) {
  const std::size_t before = sink.diagnostics().size();

  // --- resolution-path degradations (VK002 / VK003) ---
  for (const Instruction& ins : prog.code) {
    switch (classify_resolution(mm, ins)) {
      case ResolutionKind::Fallback:
        sink.report(
            Severity::Warning, "VK002", ins_location(name, ins),
            format("form '%s' is not in model '%s'; resolved via the "
                   "bare-mnemonic entry '%s' (mnemonic-level estimate)",
                   ins.form().c_str(), mm.name().c_str(),
                   ins.mnemonic.c_str()),
            {"add the exact form to the model to remove the guess"});
        break;
      case ResolutionKind::Missing:
        sink.report(
            Severity::Error, "VK003", ins_location(name, ins),
            format("form '%s' cannot be resolved against model '%s'; "
                   "analysis would fail",
                   ins.form().c_str(), mm.name().c_str()));
        break;
      case ResolutionKind::Exact:
      case ResolutionKind::Decomposed:
        break;
    }
  }

  // --- registers read before any in-body write (VK001) ---
  if (opt.flag_loop_carried_inputs) {
    std::set<std::uint32_t> written;
    std::set<std::uint32_t> ever_written;
    struct FirstRead {
      const Instruction* ins;
      std::string reg_name;
    };
    std::map<std::uint32_t, FirstRead> read_first;
    for (const Instruction& ins : prog.code) {
      for (const Register& r : ins.reads()) {
        if (is_ignored_root(r) || is_zero_register(prog, r)) continue;
        const std::uint32_t root = r.root_id();
        if (!written.contains(root) && !read_first.contains(root)) {
          read_first.emplace(root, FirstRead{&ins, r.name(prog.isa)});
        }
      }
      for (const Register& r : ins.writes()) {
        if (is_ignored_root(r) || is_zero_register(prog, r)) continue;
        written.insert(r.root_id());
        ever_written.insert(r.root_id());
      }
    }
    for (const auto& [root, first] : read_first) {
      if (!ever_written.contains(root)) continue;  // pure input, no LCD edge
      sink.report(
          Severity::Note, "VK001", ins_location(name, *first.ins),
          format("register '%s' is read before any write in the loop body "
                 "and written later: this is a loop-carried dependency",
                 first.reg_name.c_str()),
          {"intended for accumulators and induction variables; for "
           "temporaries it signals a spurious LCD edge"});
    }
  }

  // --- unreachable instructions after unconditional branches (VK004) ---
  for (std::size_t i = 0; i + 1 < prog.code.size(); ++i) {
    if (is_unconditional_branch(prog, prog.code[i])) {
      sink.report(
          Severity::Warning, "VK004", ins_location(name, prog.code[i]),
          format("%zu instruction(s) after this unconditional branch are "
                 "unreachable within the loop body",
                 prog.code.size() - i - 1),
          {"the analyzer still charges their port pressure; trim the "
           "marked region to the loop body"});
      break;  // one diagnostic per program is enough
    }
  }

  // --- dataflow-driven lints (VK007..VK012) ---
  lint_dataflow(prog, name, sink);

  return sink.diagnostics().size() - before;
}

std::size_t lint_source_markers(std::string_view text, std::string_view name,
                                DiagnosticSink& sink) {
  const std::size_t before = sink.diagnostics().size();
  const std::string loc = format("kernel '%.*s'",
                                 static_cast<int>(name.size()), name.data());
  const bool osaca_begin = text.find("OSACA-BEGIN") != std::string_view::npos;
  const bool osaca_end = text.find("OSACA-END") != std::string_view::npos;
  const bool mca_begin =
      text.find("LLVM-MCA-BEGIN") != std::string_view::npos;
  const bool mca_end = text.find("LLVM-MCA-END") != std::string_view::npos;
  const bool any_begin = osaca_begin || mca_begin;
  const bool any_end = osaca_end || mca_end;

  if (any_begin && !any_end) {
    sink.report(Severity::Warning, "VK005", loc,
                "analysis region BEGIN marker without a matching END; the "
                "whole file is analyzed instead");
  } else if (any_end && !any_begin) {
    sink.report(Severity::Warning, "VK005", loc,
                "analysis region END marker without a matching BEGIN; the "
                "whole file is analyzed instead");
  } else if ((osaca_begin && mca_end && !osaca_end && !mca_begin) ||
             (mca_begin && osaca_end && !mca_end && !osaca_begin)) {
    sink.report(Severity::Warning, "VK005", loc,
                "mismatched marker dialects (OSACA BEGIN with LLVM-MCA END "
                "or vice versa)");
  } else if (!any_begin && !any_end) {
    sink.report(Severity::Note, "VK006", loc,
                "no OSACA/LLVM-MCA region markers; every instruction in the "
                "file is treated as loop body");
  }
  return sink.diagnostics().size() - before;
}

}  // namespace incore::verify
