#include "verify/diagnostics.hpp"

#include "support/strings.hpp"

namespace incore::verify {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

std::span<const CodeInfo> all_codes() {
  static const CodeInfo kCodes[] = {
      {"VM001", Severity::Error,
       "port use references ports outside the machine"},
      {"VM002", Severity::Error, "port use has an empty port set"},
      {"VM003", Severity::Error, "port use has non-positive occupancy"},
      {"VM004", Severity::Error,
       "declared inverse throughput below the optimal-balance bound"},
      {"VM005", Severity::Error, "accumulator latency exceeds result latency"},
      {"VM006", Severity::Warning,
       "declared micro-op count below the number of occupancy groups"},
      {"VM007", Severity::Warning,
       "re-registration of an existing form key was suppressed"},
      {"VM008", Severity::Note,
       "bare-mnemonic entry shadows operand forms (acts as a fallback)"},
      {"VM009", Severity::Error,
       "non-finite or negative timing value in a form descriptor"},
      {"VM010", Severity::Warning,
       "cross-model coverage gap: form exact in one model, degraded in "
       "another"},
      {"VK001", Severity::Note,
       "register read before any write in the loop body (loop-carried)"},
      {"VK002", Severity::Warning,
       "instruction resolved only via mnemonic fallback"},
      {"VK003", Severity::Error, "instruction form not resolvable"},
      {"VK004", Severity::Warning,
       "unreachable instruction after an unconditional branch"},
      {"VK005", Severity::Warning, "unmatched analysis region markers"},
      {"VK006", Severity::Note,
       "no analysis region markers; the whole file is analyzed"},
      {"VK007", Severity::Warning,
       "register write never read before its next redefinition (dead)"},
      {"VK008", Severity::Warning,
       "partial-register write merges bytes across iterations (false "
       "loop-carried dependency)"},
      {"VK009", Severity::Warning,
       "store-to-load pair with mismatched widths defeats forwarding"},
      {"VK010", Severity::Note,
       "flag register is consumed from the previous iteration"},
      {"VK011", Severity::Note,
       "zero idiom's syntactic input dependency is broken at rename"},
      {"VK012", Severity::Note,
       "live-in register is redefined: accumulator / induction recurrence"},
      {"VP001", Severity::Error,
       "in-core prediction differs from the max of its bound certificates"},
      {"VP002", Severity::Error,
       "port-pressure certificate differs from the analyzer throughput "
       "bound"},
      {"VP003", Severity::Error,
       "critical-path certificate differs from the analyzer LCD bound"},
      {"VP004", Severity::Error,
       "MCA simulation below the certified in-core lower bound"},
      {"VP005", Severity::Error,
       "testbed measurement below the certified in-core lower bound"},
      {"VP006", Severity::Error,
       "simulated cycles below the dispatch-width bound (uops / width)"},
      {"VP007", Severity::Error,
       "fractional port assignment sums inconsistent with occupancy "
       "cycles"},
      {"VP008", Severity::Error,
       "adding an execution port raised the certified throughput bound "
       "(monotonicity violation)"},
      {"VP009", Severity::Note,
       "MCA diverges from the in-core bound: attributed cause"},
      {"VP010", Severity::Note,
       "testbed diverges from the in-core bound: attributed cause"},
      {"VP011", Severity::Error,
       "static traffic volumes diverge from the cache trace simulation "
       "without attribution"},
      {"VP012", Severity::Error,
       "ECM memory-resident prediction below the certified in-core bound"},
      {"VP013", Severity::Error,
       "multicore ECM curve not monotone, or not flat past saturation"},
      {"VP014", Severity::Error,
       "ECM scaling diverges from the memory simulators without "
       "attribution"},
      {"VT001", Severity::Warning,
       "memory streams provably overlap: their traffic is double-counted"},
      {"VT002", Severity::Warning,
       "partially overlapping store-to-load traffic splits the access"},
      {"VT003", Severity::Warning,
       "non-unit stride on a vectorized stream wastes cache-line bytes"},
      {"VT004", Severity::Note,
       "redundant reload of an unmodified stream (value stays available)"},
      {"VT005", Severity::Note,
       "gather with loop-invariant indices: per-lane access is strided"},
      {"VT006", Severity::Warning,
       "write-allocate traffic avoidable with streaming (non-temporal) "
       "stores"},
      {"VT007", Severity::Warning,
       "stream count exceeds the hardware-prefetcher tracking capacity"},
      {"VT008", Severity::Warning,
       "symbolic stride: the stream's footprint and traffic are unbounded"},
      {"VE001", Severity::Error,
       "live-out register sets differ (an output exists on one side only)"},
      {"VE002", Severity::Error,
       "live-out symbolic values diverge between the two kernels"},
      {"VE003", Severity::Error,
       "store sets differ: a memory cell is written on one side only"},
      {"VE004", Severity::Error,
       "stored symbolic values diverge for the same memory cell"},
      {"VE005", Severity::Warning,
       "outputs agree only modulo FP reassociation/contraction (rejected "
       "under --strict-fp)"},
      {"VE006", Severity::Warning,
       "matched output register has different widths on the two sides"},
      {"VE007", Severity::Note,
       "unroll factor detected: sides compared over stamped-out iterations"},
      {"VE008", Severity::Warning,
       "unsupported opcode: symbolic evaluation bailed out (with "
       "provenance)"},
  };
  return kCodes;
}

void DiagnosticSink::report(Severity severity, std::string code,
                            std::string location, std::string message,
                            std::vector<std::string> notes) {
  diags_.push_back(Diagnostic{severity, std::move(code), std::move(location),
                              std::move(message), std::move(notes)});
}

std::size_t DiagnosticSink::count(Severity s) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.severity == s) ++n;
  }
  return n;
}

std::string DiagnosticSink::to_text(Severity min_severity) const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    if (d.severity < min_severity) continue;
    out += support::format("%s[%s] %s: %s\n", to_string(d.severity),
                           d.code.c_str(), d.location.c_str(),
                           d.message.c_str());
    for (const std::string& n : d.notes) {
      out += support::format("  note: %s\n", n.c_str());
    }
  }
  return out;
}

std::string DiagnosticSink::summary() const {
  auto plural = [](std::size_t n) { return n == 1 ? "" : "s"; };
  const std::size_t e = errors();
  const std::size_t w = warnings();
  const std::size_t n = count(Severity::Note);
  return support::format("%zu error%s, %zu warning%s, %zu note%s", e,
                         plural(e), w, plural(w), n, plural(n));
}

}  // namespace incore::verify
