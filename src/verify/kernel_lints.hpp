#pragma once
// Kernel (assembly) lint suite (VKnnn diagnostics).
//
// Static checks over a parsed loop body against a machine model, run before
// any analysis: resolution-path degradations (mnemonic fallback, missing
// forms), registers that enter the iteration live (candidate loop-carried
// dependencies), unreachable code after unconditional branches, and — on
// the raw source text — missing or unmatched OSACA/LLVM-MCA region markers.

#include <string>
#include <string_view>

#include "asmir/ir.hpp"
#include "uarch/model.hpp"
#include "verify/diagnostics.hpp"

namespace incore::verify {

struct KernelLintOptions {
  /// Emit VK001 notes for registers read before their first in-body write.
  bool flag_loop_carried_inputs = true;
};

/// Lints a parsed loop body against `mm`.  `name` labels the diagnostics
/// (file name or kernel id).  Returns the number of diagnostics emitted.
std::size_t lint_program(const asmir::Program& prog,
                         const uarch::MachineModel& mm, std::string_view name,
                         DiagnosticSink& sink,
                         const KernelLintOptions& opt = {});

/// Lints the raw assembly text for analysis region markers
/// (OSACA-BEGIN/OSACA-END or LLVM-MCA-BEGIN/LLVM-MCA-END): VK005 for
/// unmatched pairs, VK006 when no markers are present at all.
std::size_t lint_source_markers(std::string_view text, std::string_view name,
                                DiagnosticSink& sink);

}  // namespace incore::verify
