#pragma once
// Structured diagnostics for the model & kernel verifier.
//
// Every lint pass reports through a DiagnosticSink instead of throwing: a
// single run surfaces *all* problems of a model or kernel at once, each as a
// Diagnostic carrying a stable code (VMnnn for machine-model lints, VKnnn
// for kernel lints, VPnnn for the cross-model prediction audit in
// src/audit/), a severity, a human-readable location and optional
// elaborating notes.  The codes are documented in docs/linting.md and
// enumerated programmatically via all_codes() so the CLI and the docs can
// never drift apart.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace incore::verify {

enum class Severity : std::uint8_t { Note, Warning, Error };

[[nodiscard]] const char* to_string(Severity s);

struct Diagnostic {
  Severity severity = Severity::Warning;
  std::string code;      // stable identifier, e.g. "VM004"
  std::string location;  // e.g. "model 'zen4', form 'vaddpd v256,v256,v256'"
  std::string message;   // one-line description of the violation
  std::vector<std::string> notes;  // elaboration / fix hints
};

/// Registry entry for a diagnostic code (drives docs and `lint --codes`).
struct CodeInfo {
  const char* code;
  Severity severity;  // default severity this code is emitted with
  const char* summary;
};

/// All diagnostic codes the verifier can emit, in code order.
[[nodiscard]] std::span<const CodeInfo> all_codes();

/// Collects diagnostics from the lint passes.  Not thread-safe; create one
/// sink per verification run.
class DiagnosticSink {
 public:
  void report(Severity severity, std::string code, std::string location,
              std::string message, std::vector<std::string> notes = {});

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }
  [[nodiscard]] std::size_t count(Severity s) const;
  [[nodiscard]] std::size_t errors() const { return count(Severity::Error); }
  [[nodiscard]] std::size_t warnings() const {
    return count(Severity::Warning);
  }
  [[nodiscard]] bool has_errors() const { return errors() > 0; }
  [[nodiscard]] bool empty() const { return diags_.empty(); }

  /// Compiler-style text rendering:
  ///   error[VM001] model 'toy', form 'op r64': <message>
  ///     note: <note>
  /// Diagnostics below `min_severity` are omitted.
  [[nodiscard]] std::string to_text(Severity min_severity = Severity::Note) const;

  /// One-line tally, e.g. "2 errors, 1 warning, 3 notes".
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace incore::verify
