#pragma once
// Machine-model lint suite (VMnnn diagnostics).
//
// Checks every InstrPerf of a MachineModel for internal contradictions
// *before* any analysis runs, so a typo in a hand-written model fails loudly
// instead of quietly corrupting predictions.  The throughput check reuses
// the exact water-filling port balancer from the analyzer: the declared
// reciprocal throughput of a form must be achievable under an optimal
// fractional assignment of its occupancy groups, which is strictly stronger
// than the per-group bound MachineModel::validate() enforces.

#include <span>
#include <string>
#include <vector>

#include "asmir/ir.hpp"
#include "uarch/model.hpp"
#include "verify/diagnostics.hpp"

namespace incore::verify {

/// How one instruction resolved against a model.
enum class ResolutionKind : std::uint8_t {
  Exact,       // form key present in the table
  Decomposed,  // folded access split into _load/_store + compute form
  Fallback,    // bare-mnemonic guess
  Missing,     // resolve() would throw UnknownInstruction
};

[[nodiscard]] const char* to_string(ResolutionKind k);

/// Classifies the resolution path of `ins` without throwing.
[[nodiscard]] ResolutionKind classify_resolution(const uarch::MachineModel& mm,
                                                 const asmir::Instruction& ins);

struct ModelLintOptions {
  /// Slack allowed between the declared inverse throughput and the
  /// water-filling optimum before VM004 fires.
  double throughput_tolerance = 1e-6;
};

/// Runs every per-form lint over the model, reporting into `sink`.
/// Returns the number of diagnostics emitted.
std::size_t lint_model(const uarch::MachineModel& mm, DiagnosticSink& sink,
                       const ModelLintOptions& opt = {});

/// A kernel attributed to the machine model its codegen targeted, as used by
/// the cross-model coverage lint.
struct CorpusEntry {
  std::string name;                       // e.g. "stream-triad/gcc/O3"
  const asmir::Program* program = nullptr;
  const uarch::MachineModel* target = nullptr;
};

/// Cross-model coverage diff (VM010): for every instruction form some corpus
/// kernel needs, a model of the same ISA that only reaches the form through
/// the mnemonic fallback (or not at all) while the kernel's target model
/// resolves it exactly is reported.  Forms are deduplicated across the
/// corpus; at most one diagnostic per (form, model) pair.
std::size_t lint_cross_model_coverage(
    std::span<const CorpusEntry> corpus,
    std::span<const uarch::MachineModel* const> models, DiagnosticSink& sink);

}  // namespace incore::verify
