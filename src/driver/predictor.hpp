#pragma once
// The unified predictor driver: one interface over the repository's three
// "run a model on a block" back ends — the OSACA-style static analyzer
// (analysis::analyze), the LLVM-MCA-style comparator (mca::simulate) and
// the execution testbed (exec::run) — plus the ECM composition for
// node-level studies.
//
// Before this layer existed, every bench, example and CLI command
// hand-rolled the same generate → parse → analyze/simulate/run glue against
// three incompatible result structs.  A Predictor turns each back end into
// "Block in, Prediction out", which is what the sweep engine (sweep.hpp)
// batches, deduplicates and parallelizes.
//
// Thread-safety contract: predict() is const and called concurrently from
// the sweep worker pool.  Adapters must only read the (immutable) block and
// machine model; per-call state stays on the stack.

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/depgraph.hpp"
#include "asmir/ir.hpp"
#include "ecm/ecm.hpp"
#include "exec/pipeline.hpp"
#include "kernels/kernels.hpp"
#include "uarch/model.hpp"

namespace incore::driver {

/// The evaluation unit: one generated kernel variant bound to its target
/// machine model, with its dedup identity precomputed.
struct Block {
  kernels::Variant variant{};
  kernels::GeneratedKernel gen;
  const uarch::MachineModel* mm = nullptr;
  /// Dedup key: hex FNV-1a of (machine name, assembly text).  Two matrix
  /// cells with equal hash get identical predictions from every model.
  std::string hash;
  /// Machine-independent assembly-content hash (the paper's "unique
  /// assembly representations" count).
  std::string text_hash;
};

/// Builds a Block (generate + hash) for a variant.  The machine model is
/// taken from the global registry.
[[nodiscard]] Block make_block(const kernels::Variant& v);

/// Same, but binds the block to an explicitly supplied machine model
/// (an .mdf-loaded model or what-if clone) instead of the registry's
/// built-in for v.target.  The model must outlive the block.
[[nodiscard]] Block make_block(const kernels::Variant& v,
                               const uarch::MachineModel& mm);

/// Builds a Block around externally supplied assembly (CLI / what-if paths
/// that analyze user text rather than generated kernels).  The variant is
/// synthetic; elements_per_iteration defaults to 1.
[[nodiscard]] Block make_block(std::string assembly_text,
                               const uarch::MachineModel& mm);

/// What a prediction's number means.  InCore covers the three program-level
/// models (L1-resident lower bound / simulation / measurement); the ECM
/// scopes extend the number to the full memory hierarchy, single- or
/// N-core.  Only ECM scopes serialize the scope/cores fields, keeping the
/// default (in-core) sweep output byte-identical to earlier releases.
enum class PredictionScope : std::uint8_t {
  InCore,         // cycles with data in L1 (or as simulated/measured)
  SingleCoreEcm,  // full-hierarchy single-core ECM composition
  MultiCoreEcm,   // socket-aggregate inverse throughput at `cores`
};

[[nodiscard]] const char* to_string(PredictionScope s);

/// One model's verdict on one block.
struct Prediction {
  std::string model;      // predictor id ("osaca", "mca", "testbed", ...)
  bool ok = false;
  std::string error;      // set when !ok (e.g. unknown instruction form)
  double cycles_per_iteration = 0.0;

  /// Scope of the number above; ECM predictors also record the active core
  /// count and the saturation point of the scaling curve (0 = the kernel
  /// moves no memory traffic and never saturates).
  PredictionScope scope = PredictionScope::InCore;
  int cores = 1;
  int saturation_cores = 0;

  // Per-bound breakdown.  Populated by the in-core predictor; zero for the
  // simulators (they produce a single number).
  double throughput_cycles = 0.0;
  double loop_carried_cycles = 0.0;
  double critical_path_cycles = 0.0;

  /// Wall time of the predictor call.  Never serialized (it would break the
  /// jobs-independence of sweep output); aggregate timing lives in
  /// SweepStats.
  std::int64_t wall_time_ns = 0;
};

class Predictor {
 public:
  virtual ~Predictor() = default;
  /// Stable identifier used in CSV/JSON column names and memo keys.
  [[nodiscard]] virtual const std::string& id() const = 0;
  /// Evaluates one block.  Must be thread-safe; must not throw (failures
  /// are reported through Prediction::ok / error).
  [[nodiscard]] virtual Prediction predict(const Block& b) const = 0;
};

/// OSACA-style static lower bound (analysis::analyze).
class InCorePredictor final : public Predictor {
 public:
  explicit InCorePredictor(std::string id = "osaca",
                           analysis::DepOptions dep_options = {});
  [[nodiscard]] const std::string& id() const override { return id_; }
  [[nodiscard]] Prediction predict(const Block& b) const override;

 private:
  std::string id_;
  analysis::DepOptions dep_;
};

/// LLVM-MCA-style comparator (mca::simulate).
class McaPredictor final : public Predictor {
 public:
  explicit McaPredictor(std::string id = "mca");
  [[nodiscard]] const std::string& id() const override { return id_; }
  [[nodiscard]] Prediction predict(const Block& b) const override;

 private:
  std::string id_;
};

/// Execution-testbed "measurement" (exec::run).  An optional config factory
/// substitutes modified silicon (the testbed-feature ablations).
class TestbedPredictor final : public Predictor {
 public:
  using ConfigFn = std::function<exec::PipelineConfig(uarch::Micro)>;
  explicit TestbedPredictor(std::string id = "testbed",
                            ConfigFn config = nullptr);
  [[nodiscard]] const std::string& id() const override { return id_; }
  [[nodiscard]] Prediction predict(const Block& b) const override;

 private:
  std::string id_;
  ConfigFn config_;
};

/// ECM composition (in-core + memory hierarchy).  Predicts single-core
/// cycles with data resident in `loc`, or — with a core count — socket
/// inverse-throughput cycles along the N-core scaling curve.  Since PR 7
/// the transfer terms come from the static traffic engine against the
/// block's own machine model (so .mdf `hierarchy` what-ifs flow through);
/// the pre-PR-7 kernel-metadata streaming guess survives behind
/// `source = LegacyStreaming` (the CLI's --legacy-traffic).
class EcmPredictor final : public Predictor {
 public:
  explicit EcmPredictor(ecm::DataLocation loc, std::string id = "",
                        ecm::TrafficSource source =
                            ecm::TrafficSource::Analytic);
  /// Full-socket saturated cycles/iteration (memory-resident data).
  [[nodiscard]] static EcmPredictor node_throughput(std::string id =
                                                        "ecm-node");
  /// Socket-aggregate cycles/iteration with `cores` active ("ecm-n<k>").
  [[nodiscard]] static EcmPredictor multicore(int cores, std::string id = "");
  [[nodiscard]] const std::string& id() const override { return id_; }
  [[nodiscard]] Prediction predict(const Block& b) const override;

 private:
  EcmPredictor(ecm::DataLocation loc, int cores, std::string id,
               ecm::TrafficSource source);
  std::string id_;
  ecm::DataLocation loc_ = ecm::DataLocation::Memory;
  /// 0 = single-core; -1 = whole socket; >0 = explicit core count.
  int cores_ = 0;
  ecm::TrafficSource source_ = ecm::TrafficSource::Analytic;
};

// ---------------------------------------------------------------------------
// Model registry: the three program-level models of the paper's Fig. 3.
// ---------------------------------------------------------------------------

enum class Model : std::uint8_t { InCore, Mca, Testbed };

[[nodiscard]] const char* to_string(Model m);
/// Accepts the canonical ids plus common aliases ("osaca", "incore",
/// "analysis"; "mca", "llvm-mca"; "testbed", "exec", "measured").
[[nodiscard]] bool model_from_name(std::string_view name, Model& out);
/// Paper order: OSACA bound, MCA comparator, testbed measurement.
[[nodiscard]] const std::vector<Model>& all_models();

[[nodiscard]] std::unique_ptr<Predictor> make_predictor(Model m);

/// One-shot convenience: evaluate a parsed program (no kernel context).
[[nodiscard]] Prediction predict_program(const asmir::Program& prog,
                                         const uarch::MachineModel& mm,
                                         Model m);
/// One-shot convenience over a specific predictor and raw assembly text.
[[nodiscard]] Prediction predict_assembly(const Predictor& p,
                                          const std::string& text,
                                          const uarch::MachineModel& mm);

}  // namespace incore::driver
