#include "driver/predictor.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <map>
#include <utility>

#include "analysis/analyze.hpp"
#include "asmir/parser.hpp"
#include "exec/exec.hpp"
#include "mca/mca.hpp"
#include "support/annotations.hpp"
#include "support/hash.hpp"
#include "support/strings.hpp"

namespace incore::driver {

namespace {

/// Runs `fn` (which fills in the model-specific fields), stamping the id,
/// the ok/error status and the wall time.
template <typename Fn>
Prediction timed_predict(const std::string& id, Fn&& fn) {
  Prediction p;
  p.model = id;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    fn(p);
    p.ok = true;
  } catch (const std::exception& e) {
    p.ok = false;
    p.error = e.what();
    p.cycles_per_iteration = 0.0;
  }
  p.wall_time_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return p;
}

}  // namespace

const char* to_string(PredictionScope s) {
  switch (s) {
    case PredictionScope::InCore: return "in-core";
    case PredictionScope::SingleCoreEcm: return "single-core-ecm";
    case PredictionScope::MultiCoreEcm: return "multi-core-ecm";
  }
  return "?";
}

Block make_block(const kernels::Variant& v) {
  return make_block(v, uarch::machine(v.target));
}

Block make_block(const kernels::Variant& v, const uarch::MachineModel& mm) {
  Block b;
  b.variant = v;
  b.gen = kernels::generate(v);
  b.mm = &mm;
  b.text_hash = support::text_key(b.gen.assembly);
  b.hash = support::block_key(b.mm->name(), b.gen.assembly);
  return b;
}

Block make_block(std::string assembly_text, const uarch::MachineModel& mm) {
  Block b;
  b.gen.assembly = std::move(assembly_text);
  b.gen.program = asmir::parse(b.gen.assembly, mm.isa());
  b.gen.elements_per_iteration = 1;
  b.mm = &mm;
  b.text_hash = support::text_key(b.gen.assembly);
  b.hash = support::block_key(mm.name(), b.gen.assembly);
  return b;
}

// ------------------------------------------------------------------ in-core

InCorePredictor::InCorePredictor(std::string id,
                                 analysis::DepOptions dep_options)
    : id_(std::move(id)), dep_(dep_options) {}

Prediction InCorePredictor::predict(const Block& b) const {
  return timed_predict(id_, [&](Prediction& p) {
    const analysis::Report rep = analysis::analyze(b.gen.program, *b.mm, dep_);
    p.cycles_per_iteration = rep.predicted_cycles();
    p.throughput_cycles = rep.throughput_cycles();
    p.loop_carried_cycles = rep.loop_carried_cycles();
    p.critical_path_cycles = rep.critical_path_cycles();
  });
}

// ---------------------------------------------------------------------- mca

McaPredictor::McaPredictor(std::string id) : id_(std::move(id)) {}

Prediction McaPredictor::predict(const Block& b) const {
  return timed_predict(id_, [&](Prediction& p) {
    p.cycles_per_iteration = mca::simulate(b.gen.program, *b.mm)
                                 .cycles_per_iteration;
  });
}

// ------------------------------------------------------------------ testbed

TestbedPredictor::TestbedPredictor(std::string id, ConfigFn config)
    : id_(std::move(id)), config_(std::move(config)) {}

Prediction TestbedPredictor::predict(const Block& b) const {
  return timed_predict(id_, [&](Prediction& p) {
    const exec::Measurement m =
        config_ ? exec::run(b.gen.program, *b.mm, config_(b.mm->micro()))
                : exec::run(b.gen.program, *b.mm);
    p.cycles_per_iteration = m.cycles_per_iteration;
  });
}

// ---------------------------------------------------------------------- ecm

EcmPredictor::EcmPredictor(ecm::DataLocation loc, std::string id,
                           ecm::TrafficSource source)
    : EcmPredictor(loc, 0,
                   id.empty() ? std::string("ecm-") + ecm::to_string(loc)
                              : std::move(id),
                   source) {}

EcmPredictor::EcmPredictor(ecm::DataLocation loc, int cores, std::string id,
                           ecm::TrafficSource source)
    : id_(std::move(id)), loc_(loc), cores_(cores), source_(source) {}

EcmPredictor EcmPredictor::node_throughput(std::string id) {
  return EcmPredictor(ecm::DataLocation::Memory, -1, std::move(id),
                      ecm::TrafficSource::Analytic);
}

EcmPredictor EcmPredictor::multicore(int cores, std::string id) {
  return EcmPredictor(ecm::DataLocation::Memory, std::max(1, cores),
                      id.empty() ? support::format("ecm-n%d", cores)
                                 : std::move(id),
                      ecm::TrafficSource::Analytic);
}

namespace {

/// Memoizes the analytic ECM composition per block.  A cores-axis sweep
/// instantiates one EcmPredictor per sampled core count, but the
/// underlying analysis (in-core split + traffic engine + claim replay)
/// depends only on the block, so N core points share one evaluation.
/// The block hash covers (machine name, assembly); the composition also
/// depends on the hierarchy constants, which a loaded what-if model can
/// edit without renaming, so they join the key.
///
/// The guard relationship is machine-checked (support/annotations.hpp).
/// The mutex is a leaf of the lock hierarchy: it may be acquired while a
/// service Job's mutex is held (the evaluate stage calls predict()), and
/// acquires nothing itself.
struct EcmMemo {
  support::Mutex mu;
  std::map<std::string, ecm::Prediction> entries INCORE_GUARDED_BY(mu);
};

EcmMemo& ecm_memo() {
  static EcmMemo memo;
  return memo;
}

ecm::Prediction analytic_ecm_for(const Block& b,
                                 const analysis::Report& rep) {
  EcmMemo& memo = ecm_memo();
  const uarch::HierarchyParams& h = b.mm->hierarchy;
  // One hash definition everywhere (support::block_key): reuse the sweep's
  // dedup key when the block carries it, re-derive it through the same
  // helper when the block was built without one (raw predict() calls).
  const std::string block_hash =
      b.hash.empty() ? support::block_key(b.mm->name(), b.gen.assembly)
                     : b.hash;
  const std::string key =
      block_hash + support::format("|%.17g|%.17g|%.17g|%.17g|%d|%d",
                               h.cy_per_cl_l1_l2, h.cy_per_cl_l2_l3,
                               h.cy_per_cl_l3_mem, h.socket_cl_per_cy,
                               h.socket_cores,
                               h.write_allocate_evaded ? 1 : 0);
  {
    const support::LockGuard lock(memo.mu);
    auto it = memo.entries.find(key);
    if (it != memo.entries.end()) return it->second;
  }
  const ecm::Prediction ep = ecm::predict_block(rep, b.gen.program, *b.mm);
  const support::LockGuard lock(memo.mu);
  return memo.entries.emplace(key, ep).first->second;
}

}  // namespace

Prediction EcmPredictor::predict(const Block& b) const {
  return timed_predict(id_, [&](Prediction& p) {
    const analysis::Report rep = analysis::analyze(b.gen.program, *b.mm);
    const ecm::HierarchyParams h = ecm::hierarchy_for(*b.mm);
    const ecm::Prediction ep =
        source_ == ecm::TrafficSource::LegacyStreaming
            ? ecm::predict(rep,
                           ecm::traffic_for(b.variant,
                                            b.gen.elements_per_iteration),
                           h)
            : analytic_ecm_for(b, rep);
    p.saturation_cores =
        ep.t_l3mem > 0 ? std::min(ep.saturation_cores(h), h.socket_cores) : 0;
    if (cores_ != 0) {
      const int n = cores_ < 0 ? h.socket_cores : cores_;
      p.scope = PredictionScope::MultiCoreEcm;
      p.cores = n;
      p.cycles_per_iteration = ep.multicore_cycles(n, h);
    } else {
      p.scope = PredictionScope::SingleCoreEcm;
      p.cores = 1;
      p.cycles_per_iteration = ep.cycles(loc_);
    }
  });
}

// ----------------------------------------------------------------- registry

const char* to_string(Model m) {
  switch (m) {
    case Model::InCore: return "osaca";
    case Model::Mca: return "mca";
    case Model::Testbed: return "testbed";
  }
  return "?";
}

bool model_from_name(std::string_view name, Model& out) {
  if (name == "osaca" || name == "incore" || name == "analysis") {
    out = Model::InCore;
  } else if (name == "mca" || name == "llvm-mca") {
    out = Model::Mca;
  } else if (name == "testbed" || name == "exec" || name == "measured") {
    out = Model::Testbed;
  } else {
    return false;
  }
  return true;
}

const std::vector<Model>& all_models() {
  static const std::vector<Model> models = {Model::InCore, Model::Mca,
                                            Model::Testbed};
  return models;
}

std::unique_ptr<Predictor> make_predictor(Model m) {
  switch (m) {
    case Model::InCore: return std::make_unique<InCorePredictor>();
    case Model::Mca: return std::make_unique<McaPredictor>();
    case Model::Testbed: return std::make_unique<TestbedPredictor>();
  }
  return nullptr;
}

Prediction predict_program(const asmir::Program& prog,
                           const uarch::MachineModel& mm, Model m) {
  Block b;
  b.gen.program = prog;
  b.gen.elements_per_iteration = 1;
  b.mm = &mm;
  return make_predictor(m)->predict(b);
}

Prediction predict_assembly(const Predictor& p, const std::string& text,
                            const uarch::MachineModel& mm) {
  try {
    return p.predict(make_block(text, mm));
  } catch (const std::exception& e) {
    Prediction bad;
    bad.model = p.id();
    bad.ok = false;
    bad.error = e.what();
    return bad;
  }
}

}  // namespace incore::driver
