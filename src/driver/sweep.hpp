#pragma once
// The matrix sweep engine: evaluates kernel variants × predictors with
// content-hash deduplication, per-(hash, model) memoization and a bounded
// worker pool — the paper's Fig. 3 / Table 4 workflow made first-class.
//
// Pipeline:
//   1. codegen (serial, cheap): every variant is rendered and hashed;
//   2. dedup: variants collapse to unique (machine, assembly) blocks —
//      the 416-cell matrix holds only a few hundred unique blocks, so
//      every model evaluates each unique block exactly once;
//   3. evaluation (parallel): unique-block × predictor tasks fan out over
//      a support::ThreadPool; each task writes its own result slot, so
//      output is byte-identical for any --jobs value;
//   4. assembly: matrix-ordered rows referencing the memoized predictions.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "driver/predictor.hpp"
#include "report/report.hpp"
#include "uarch/registry.hpp"

namespace incore::server {
class ServiceCore;  // the staged prediction pipeline (server/core.hpp)
}  // namespace incore::server

namespace incore::driver {

/// Optional prediction-audit hook: called once per *unique* block after the
/// predictor evaluations, under the same slot-disciplined worker pool, and
/// returns the block's audit verdict ("pass", "divergent:<cause>", ...).
/// The driver stays audit-agnostic: the CLI installs audit::audit_block
/// here, so src/driver/ does not depend on src/audit/.  Must be thread-safe.
using AuditHook = std::function<std::string(const Block&)>;

/// Optional traffic hook, same contract as AuditHook: called once per
/// unique block and returns a compact per-iteration traffic summary for
/// the `traffic_lines` column.  The driver stays traffic-agnostic: the CLI
/// installs the static traffic engine here.  Must be thread-safe.
using TrafficHook = std::function<std::string(const Block&)>;

struct SweepOptions {
  /// Worker threads for predictor evaluation; <= 1 runs inline.
  int jobs = 1;
  /// When set, every unique block is audited and the reports gain an
  /// `audit_verdict` column (absent otherwise, keeping default output
  /// byte-identical).
  AuditHook audit;
  /// When set, the reports gain a `traffic_lines` column (absent
  /// otherwise, keeping default output byte-identical).
  TrafficHook traffic;
  /// Models to run; empty means all three (OSACA, MCA, testbed).
  std::vector<Model> models;
  /// N-core ECM axis: for each entry k an `ecm-n<k>` predictor (full-kernel
  /// socket inverse throughput with k cores active) is appended after the
  /// models, so the reports gain one scaling-curve column per core count.
  /// Empty (the default) adds nothing and keeps output byte-identical.
  std::vector<int> cores;
  // Matrix filters; an empty filter keeps every value of that axis.
  std::vector<kernels::Kernel> kernels;
  /// Machines to sweep; empty means the built-in paper trio.  A ref may
  /// point at a built-in model, a .mdf-loaded model or a registered
  /// what-if clone; its family tag (model->micro()) selects the codegen
  /// personality, so at most one machine per family is allowed in a
  /// single sweep (ModelError otherwise).
  std::vector<uarch::MachineRef> machines;
  std::vector<kernels::Compiler> compilers;
  std::vector<kernels::OptLevel> opt_levels;
};

/// The paper's test matrix restricted by the options' filters, in
/// deterministic (paper) order.
[[nodiscard]] std::vector<kernels::Variant> filter_matrix(
    const SweepOptions& opt);

/// One matrix cell: its variant, the unique block it deduplicated to, and
/// one prediction per requested model (order of SweepResult::model_ids).
struct SweepRow {
  kernels::Variant variant{};
  std::size_t block_index = 0;  // into SweepResult::blocks
  std::vector<Prediction> predictions;
};

struct SweepStats {
  std::size_t cells = 0;              // matrix cells (variants swept)
  std::size_t unique_blocks = 0;      // distinct (machine, assembly)
  std::size_t unique_assemblies = 0;  // distinct assembly text
  std::size_t evaluations = 0;        // predictor calls actually made
  std::size_t dedup_hits = 0;         // cell×model results served from memo
  std::size_t failed = 0;             // evaluations with !ok
  int jobs = 1;
  /// Total wall time of the evaluation phase.  Never serialized.
  std::int64_t wall_time_ns = 0;
};

struct SweepResult {
  std::vector<std::string> model_ids;  // predictor order
  std::vector<Block> blocks;           // unique blocks, first-seen order
  std::vector<SweepRow> rows;          // matrix order
  SweepStats stats;
  /// Per unique block (parallel to `blocks`); empty when no audit hook ran.
  std::vector<std::string> audit_verdicts;
  /// Per unique block (parallel to `blocks`); empty when no traffic hook
  /// ran.
  std::vector<std::string> traffic_lines;

  /// The row's prediction for a model id; nullptr when absent.
  [[nodiscard]] const Prediction* find(const SweepRow& row,
                                       std::string_view model_id) const;
};

/// Maps a variant's family tag to the machine model its blocks are built
/// against.  The default (an empty function) uses the built-in models;
/// sweep(SweepOptions) substitutes .mdf-loaded or what-if models here.
using MachineResolver =
    std::function<const uarch::MachineModel&(uarch::Micro)>;

/// Core entry point: evaluates `matrix` against `predictors` (non-owning;
/// must outlive the call) by submitting every unique block to the staged
/// service pipeline (server::ServiceCore) and draining the handles in
/// first-seen block order — the batch sweep is "submit all cells, drain"
/// over the same core the incore-server daemon runs.  `service` selects the
/// pipeline: nullptr (the default, and the batch CLI path) spins up a
/// private core with `jobs` evaluate/finalize workers and tears it down on
/// return; a daemon passes its long-lived core so concurrent sweeps share
/// its memo and coalescer.  Slot discipline keeps the result byte-identical
/// for any jobs value or core configuration.
[[nodiscard]] SweepResult sweep(const std::vector<kernels::Variant>& matrix,
                                const std::vector<const Predictor*>& predictors,
                                int jobs = 1,
                                const MachineResolver& machines = {},
                                const AuditHook& audit = {},
                                const TrafficHook& traffic = {},
                                server::ServiceCore* service = nullptr);

/// Convenience: builds the filtered matrix and the standard model
/// predictors from the options.
[[nodiscard]] SweepResult sweep(const SweepOptions& opt,
                                server::ServiceCore* service = nullptr);

// ---------------------------------------------------------------- reporting

/// Matrix CSV: one line per cell with the variant axes, the dedup hash,
/// elements/iteration and one cycles/iteration column per model (empty on
/// evaluation failure).  Deterministic: independent of stats.jobs.
[[nodiscard]] std::string to_csv(const SweepResult& r);

/// JSON document: stats, model list and per-cell predictions with the
/// per-bound breakdown.  Deterministic: wall times are excluded.
[[nodiscard]] std::string to_json(const SweepResult& r);

/// Scaling-curve digest of a sweep that ran with a cores axis: one line per
/// unique block with cycles/iteration at each ecm-n<k> core count and the
/// saturation point (marked in the curve; "-" when the kernel never
/// saturates the interface).  Empty string when no ecm-n<k> model ran.
[[nodiscard]] std::string scaling_summary(const SweepResult& r);

struct ModelErrorStats {
  std::string model;
  report::RpeSummary rpe;
  std::vector<double> rpes;  // per contributing row, matrix order
};

/// Relative prediction error of every non-reference model against
/// `reference` (RPE = (ref - pred) / ref), over rows where both
/// evaluations succeeded.  Empty when the reference model was not swept.
[[nodiscard]] std::vector<ModelErrorStats> error_stats(
    const SweepResult& r, std::string_view reference = "testbed");

}  // namespace incore::driver
