#include "driver/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <unordered_set>

#include "report/json.hpp"
#include "server/core.hpp"
#include "support/csv.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/threadpool.hpp"

#include <sstream>

namespace incore::driver {

using support::format;

namespace {

template <typename T>
bool keeps(const std::vector<T>& filter, T value) {
  return filter.empty() ||
         std::find(filter.begin(), filter.end(), value) != filter.end();
}

}  // namespace

std::vector<kernels::Variant> filter_matrix(const SweepOptions& opt) {
  std::vector<kernels::Variant> out;
  for (const kernels::Variant& v : kernels::test_matrix()) {
    if (!keeps(opt.kernels, v.kernel)) continue;
    if (!opt.machines.empty()) {
      bool hit = false;
      for (const uarch::MachineRef& m : opt.machines) {
        hit |= m.model != nullptr && m.model->micro() == v.target;
      }
      if (!hit) continue;
    }
    if (!keeps(opt.compilers, v.compiler)) continue;
    if (!keeps(opt.opt_levels, v.opt)) continue;
    out.push_back(v);
  }
  return out;
}

const Prediction* SweepResult::find(const SweepRow& row,
                                    std::string_view model_id) const {
  for (std::size_t m = 0; m < model_ids.size(); ++m) {
    if (model_ids[m] == model_id) return &row.predictions[m];
  }
  return nullptr;
}

SweepResult sweep(const std::vector<kernels::Variant>& matrix,
                  const std::vector<const Predictor*>& predictors, int jobs,
                  const MachineResolver& machines, const AuditHook& audit,
                  const TrafficHook& traffic, server::ServiceCore* service) {
  SweepResult r;
  r.model_ids.reserve(predictors.size());
  for (const Predictor* p : predictors) r.model_ids.push_back(p->id());

  // Phase 1+2 (serial): codegen, hash, dedup.  Codegen is microseconds per
  // block; the predictors are where the time goes.
  std::unordered_map<std::string, std::size_t> block_of_hash;
  std::unordered_set<std::string> assemblies;
  std::vector<std::size_t> cell_block;  // per matrix cell -> unique block
  cell_block.reserve(matrix.size());
  for (const kernels::Variant& v : matrix) {
    Block b = machines ? make_block(v, machines(v.target)) : make_block(v);
    assemblies.insert(b.text_hash);
    auto [it, inserted] = block_of_hash.emplace(b.hash, r.blocks.size());
    if (inserted) r.blocks.push_back(std::move(b));
    cell_block.push_back(it->second);
  }

  // Phase 3 (pipelined): one service job per unique block — the pipeline
  // runs the predictors in the evaluate stage and the audit/traffic hooks
  // in the finalize stage, so block k+1 can be evaluating while block k is
  // still being audited.  Results land in a pre-sized slot table indexed by
  // block*P + predictor; slot discipline keeps the output byte-identical
  // for any jobs value.
  const std::size_t P = predictors.size();
  std::vector<Prediction> memo(r.blocks.size() * P);
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::unique_ptr<server::ServiceCore> owned_core;
    if (service == nullptr) {
      // Batch mode: a private pipeline sized like the old flat worker pool
      // (the evaluators and the finalize hooks are where the time goes),
      // torn down on return.  A daemon passes its long-lived core instead.
      server::ServiceConfig cfg;
      cfg.evaluate_workers = std::max(1, jobs);
      cfg.finalize_workers = std::max(1, jobs);
      cfg.queue_capacity = std::max<std::size_t>(r.blocks.size() + 1, 16);
      owned_core = std::make_unique<server::ServiceCore>(cfg);
      service = owned_core.get();
    }
    std::vector<server::JobHandle> handles;
    handles.reserve(r.blocks.size());
    for (const Block& b : r.blocks) {
      server::JobRequest req;
      req.block = b;
      req.parsed = true;  // codegen output arrives parsed
      req.predictors = predictors;
      req.audit = audit;
      req.traffic = traffic;
      handles.push_back(service->submit(std::move(req)));
    }
    if (audit) r.audit_verdicts.assign(r.blocks.size(), std::string());
    if (traffic) r.traffic_lines.assign(r.blocks.size(), std::string());
    // Wait on *every* handle before surfacing a failure.  On an external
    // daemon core the jobs still in flight hold raw pointers to this
    // call's predictors and machine models; throwing at the first bad
    // result would unwind and free them while pipeline workers are still
    // dereferencing them (and caching the garbage in the shared memo).
    std::size_t first_failed = handles.size();
    std::string first_error;
    for (std::size_t i = 0; i < handles.size(); ++i) {
      const server::JobResult res = handles[i]->wait();
      if (!res.ok) {
        // Pipeline-level failure (a hook threw, or the service stopped).
        // Predictor failures are *not* job failures; they arrive per
        // Prediction below, exactly as before.
        if (first_failed == handles.size()) {
          first_failed = i;
          first_error = res.error;
        }
        continue;
      }
      for (std::size_t m = 0; m < P; ++m) memo[i * P + m] = res.predictions[m];
      if (audit) r.audit_verdicts[i] = res.audit_verdict;
      if (traffic) r.traffic_lines[i] = res.traffic_line;
    }
    if (first_failed != handles.size()) {
      throw support::ModelError("sweep: block " + r.blocks[first_failed].hash +
                                ": " + first_error);
    }
  }
  r.stats.wall_time_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

  // Phase 4 (serial): matrix-ordered rows referencing the memoized results.
  r.rows.reserve(matrix.size());
  for (std::size_t c = 0; c < matrix.size(); ++c) {
    SweepRow row;
    row.variant = matrix[c];
    row.block_index = cell_block[c];
    row.predictions.assign(memo.begin() + static_cast<std::ptrdiff_t>(
                                              row.block_index * P),
                           memo.begin() + static_cast<std::ptrdiff_t>(
                                              (row.block_index + 1) * P));
    r.rows.push_back(std::move(row));
  }

  r.stats.cells = matrix.size();
  r.stats.unique_blocks = r.blocks.size();
  r.stats.unique_assemblies = assemblies.size();
  r.stats.evaluations = memo.size();
  r.stats.dedup_hits = (matrix.size() - r.blocks.size()) * P;
  r.stats.jobs = std::max(1, jobs);
  for (const Prediction& p : memo) {
    if (!p.ok) ++r.stats.failed;
  }
  return r;
}

SweepResult sweep(const SweepOptions& opt, server::ServiceCore* service) {
  const std::vector<Model>& models =
      opt.models.empty() ? all_models() : opt.models;
  std::vector<std::unique_ptr<Predictor>> owned;
  std::vector<const Predictor*> predictors;
  owned.reserve(models.size() + opt.cores.size());
  for (Model m : models) {
    owned.push_back(make_predictor(m));
    predictors.push_back(owned.back().get());
  }
  // The N-core ECM axis rides after the models: one scaling-curve column
  // per requested core count.
  for (int n : opt.cores) {
    owned.push_back(std::make_unique<EcmPredictor>(EcmPredictor::multicore(n)));
    predictors.push_back(owned.back().get());
  }
  // Substitute the selected machines for the built-in models.  The codegen
  // personality is keyed by the family tag, so two machines of the same
  // family in one sweep would be ambiguous.
  std::unordered_map<uarch::Micro, const uarch::MachineModel*> by_family;
  for (const uarch::MachineRef& m : opt.machines) {
    if (m.model == nullptr) continue;
    auto [it, inserted] = by_family.emplace(m.model->micro(), m.model);
    if (!inserted && it->second != m.model) {
      throw support::ModelError(
          "sweep: machines '" + std::string(it->second->name()) + "' and '" +
          m.model->name() + "' both map to codegen family " +
          uarch::cpu_short_name(m.model->micro()));
    }
  }
  MachineResolver resolver;
  if (!by_family.empty()) {
    resolver = [by_family](uarch::Micro micro) -> const uarch::MachineModel& {
      auto it = by_family.find(micro);
      return it != by_family.end() ? *it->second : uarch::machine(micro);
    };
  }
  return sweep(filter_matrix(opt), predictors, opt.jobs, resolver, opt.audit,
               opt.traffic, service);
}

// ------------------------------------------------------------------- output

std::string to_csv(const SweepResult& r) {
  std::ostringstream os;
  support::CsvWriter csv(os);
  std::vector<std::string> header = {"variant", "kernel",  "compiler",
                                     "opt",     "machine", "block_hash",
                                     "elements_per_iter"};
  for (const std::string& id : r.model_ids) header.push_back(id + "_cy");
  const bool audited = !r.audit_verdicts.empty();
  if (audited) header.push_back("audit_verdict");
  const bool trafficked = !r.traffic_lines.empty();
  if (trafficked) header.push_back("traffic_lines");
  csv.header(header);
  for (const SweepRow& row : r.rows) {
    const Block& b = r.blocks[row.block_index];
    std::vector<std::string> fields = {
        row.variant.label(),
        kernels::to_string(row.variant.kernel),
        kernels::to_string(row.variant.compiler),
        kernels::to_string(row.variant.opt),
        uarch::cpu_short_name(row.variant.target),
        b.hash,
        format("%d", b.gen.elements_per_iteration)};
    for (const Prediction& p : row.predictions) {
      fields.push_back(p.ok ? format("%.4f", p.cycles_per_iteration)
                            : std::string());
    }
    if (audited) fields.push_back(r.audit_verdicts[row.block_index]);
    if (trafficked) fields.push_back(r.traffic_lines[row.block_index]);
    csv.row(fields);
  }
  return os.str();
}

std::string to_json(const SweepResult& r) {
  std::string out = "{\n";
  out += "  \"models\": [";
  for (std::size_t m = 0; m < r.model_ids.size(); ++m) {
    out += format("%s\"%s\"", m ? ", " : "", r.model_ids[m].c_str());
  }
  out += "],\n";
  out += format(
      "  \"stats\": {\"cells\": %zu, \"unique_blocks\": %zu, "
      "\"unique_assemblies\": %zu, \"evaluations\": %zu, \"dedup_hits\": "
      "%zu, \"failed\": %zu},\n",
      r.stats.cells, r.stats.unique_blocks, r.stats.unique_assemblies,
      r.stats.evaluations, r.stats.dedup_hits, r.stats.failed);
  out += "  \"cells\": [\n";
  for (std::size_t c = 0; c < r.rows.size(); ++c) {
    const SweepRow& row = r.rows[c];
    const Block& b = r.blocks[row.block_index];
    out += format(
        "    {\"variant\": \"%s\", \"kernel\": \"%s\", \"compiler\": \"%s\", "
        "\"opt\": \"%s\", \"machine\": \"%s\", \"block_hash\": \"%s\", "
        "\"elements_per_iter\": %d, \"predictions\": {",
        row.variant.label().c_str(), kernels::to_string(row.variant.kernel),
        kernels::to_string(row.variant.compiler),
        kernels::to_string(row.variant.opt),
        uarch::cpu_short_name(row.variant.target), b.hash.c_str(),
        b.gen.elements_per_iteration);
    if (!r.audit_verdicts.empty()) {
      // Splice the verdict ahead of the predictions object (the line above
      // ends with `"predictions": {`).
      const std::string tail = "\"predictions\": {";
      out.insert(out.size() - tail.size(),
                 format("\"audit_verdict\": \"%s\", ",
                        report::json_escape(
                            r.audit_verdicts[row.block_index]).c_str()));
    }
    if (!r.traffic_lines.empty()) {
      const std::string tail = "\"predictions\": {";
      out.insert(out.size() - tail.size(),
                 format("\"traffic_lines\": \"%s\", ",
                        report::json_escape(
                            r.traffic_lines[row.block_index]).c_str()));
    }
    for (std::size_t m = 0; m < row.predictions.size(); ++m) {
      const Prediction& p = row.predictions[m];
      out += m ? ", " : "";
      if (p.ok) {
        out += format("\"%s\": {\"ok\": true, \"cycles_per_iteration\": %.6g",
                      p.model.c_str(), p.cycles_per_iteration);
        if (p.scope != PredictionScope::InCore) {
          out += format(
              ", \"scope\": \"%s\", \"cores\": %d, \"saturation_cores\": %d",
              to_string(p.scope), p.cores, p.saturation_cores);
        }
        if (p.throughput_cycles > 0 || p.loop_carried_cycles > 0 ||
            p.critical_path_cycles > 0) {
          out += format(
              ", \"throughput_cycles\": %.6g, \"loop_carried_cycles\": %.6g, "
              "\"critical_path_cycles\": %.6g",
              p.throughput_cycles, p.loop_carried_cycles,
              p.critical_path_cycles);
        }
        out += "}";
      } else {
        out += format("\"%s\": {\"ok\": false, \"error\": \"%s\"}",
                      p.model.c_str(),
                      report::json_escape(p.error).c_str());
      }
    }
    out += "}}";
    out += c + 1 < r.rows.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string scaling_summary(const SweepResult& r) {
  // Columns of the scaling curve: the ecm-n<k> predictors, in sweep order.
  std::vector<std::size_t> cols;
  for (std::size_t m = 0; m < r.model_ids.size(); ++m) {
    if (support::starts_with(r.model_ids[m], "ecm-n")) cols.push_back(m);
  }
  if (cols.empty()) return {};
  std::string out = "scaling curves (socket cycles/iteration vs cores):\n";
  std::unordered_set<std::size_t> seen;
  for (const SweepRow& row : r.rows) {
    if (!seen.insert(row.block_index).second) continue;  // one line per block
    out += format("  %-28s", row.variant.label().c_str());
    int n_sat = 0;
    bool saturated_marked = false;
    for (std::size_t m : cols) {
      const Prediction& p = row.predictions[m];
      if (!p.ok) {
        out += format("  %s:!", r.model_ids[m].c_str() + 4);
        continue;
      }
      n_sat = p.saturation_cores;
      const bool sat = n_sat > 0 && p.cores >= n_sat;
      out += format("  n%d:%.3f%s", p.cores, p.cycles_per_iteration,
                    sat && !saturated_marked ? "*" : "");
      saturated_marked = saturated_marked || sat;
    }
    out += n_sat > 0 ? format("  n_sat=%d\n", n_sat)
                     : std::string("  n_sat=-\n");
  }
  return out;
}

std::vector<ModelErrorStats> error_stats(const SweepResult& r,
                                         std::string_view reference) {
  std::size_t ref = r.model_ids.size();
  for (std::size_t m = 0; m < r.model_ids.size(); ++m) {
    if (r.model_ids[m] == reference) ref = m;
  }
  std::vector<ModelErrorStats> out;
  if (ref == r.model_ids.size()) return out;
  for (std::size_t m = 0; m < r.model_ids.size(); ++m) {
    if (m == ref) continue;
    ModelErrorStats s;
    s.model = r.model_ids[m];
    for (const SweepRow& row : r.rows) {
      const Prediction& p = row.predictions[m];
      const Prediction& q = row.predictions[ref];
      if (!p.ok || !q.ok || q.cycles_per_iteration == 0) continue;
      s.rpes.push_back((q.cycles_per_iteration - p.cycles_per_iteration) /
                       q.cycles_per_iteration);
    }
    s.rpe = report::summarize_rpe(s.rpes);
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace incore::driver
