#pragma once
// Time-domain thermal/DVFS simulation.
//
// The steady-state model in power.hpp answers "what clock is sustained";
// this component simulates the *transient*: the paper's measurement
// methodology ("each benchmark ran for several minutes and the clock
// frequency of all active cores was tracked") sees an initial boost phase
// followed by a throttle-down once the package heats up.  Modeled as a
// first-order thermal RC circuit driving a reactive governor:
//
//   C_th * dT/dt = P(f, n) - (T - T_ambient) / R_th
//   governor: lower f stepwise while T > T_max, raise while there is
//             headroom, never beyond the license cap.

#include <vector>

#include "power/power.hpp"

namespace incore::power {

struct ThermalConfig {
  double ambient_c = 30.0;
  double t_max_c = 95.0;      // throttle threshold
  /// Package thermal resistance; 0 = derive from the chip's TDP rating so
  /// that the package sits exactly at t_max when dissipating TDP (the
  /// definition of a TDP-rated cooling solution).
  double r_th_c_per_w = 0.0;
  double c_th_j_per_c = 400.0;      // package thermal capacitance
  double step_hz = 0.025;           // governor step size (GHz)
  double dt_s = 0.1;                // integration step
};

struct ThermalSample {
  double time_s = 0.0;
  double frequency_ghz = 0.0;
  double temperature_c = 0.0;
  double power_w = 0.0;
};

/// Simulates `duration_s` of an arithmetic-heavy run on `active_cores`
/// cores, returning the frequency/temperature trace.  The governor starts
/// from the boost clock (the measured behaviour on all three machines).
[[nodiscard]] std::vector<ThermalSample> simulate_thermal_trace(
    uarch::Micro micro, IsaClass isa, int active_cores, double duration_s,
    const ThermalConfig& cfg = {});

/// Mean frequency over the final 20% of the trace (the "sustained" value
/// the paper reports); converges to the steady-state model's answer.
[[nodiscard]] double sustained_from_trace(
    const std::vector<ThermalSample>& trace);

}  // namespace incore::power
