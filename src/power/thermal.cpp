#include "power/thermal.hpp"

#include <algorithm>
#include <cmath>

namespace incore::power {

namespace {

double package_power(const ChipPowerModel& c, IsaClass isa, int n, double f) {
  double v = c.v0 + c.k * f;
  return c.uncore_w + n * (c.static_core_w + c.dyn_coeff(isa) * f * v * v);
}

}  // namespace

std::vector<ThermalSample> simulate_thermal_trace(uarch::Micro micro,
                                                  IsaClass isa,
                                                  int active_cores,
                                                  double duration_s,
                                                  const ThermalConfig& cfg) {
  const ChipPowerModel& c = chip(micro);
  active_cores = std::clamp(active_cores, 1, c.cores);
  ThermalConfig tc = cfg;
  if (tc.r_th_c_per_w <= 0.0)
    tc.r_th_c_per_w = (tc.t_max_c - tc.ambient_c) / c.tdp_w;
  std::vector<ThermalSample> trace;
  trace.reserve(static_cast<std::size_t>(duration_s / tc.dt_s) + 1);

  double f = c.frequency_fixed ? c.base_ghz : c.license_cap(isa);
  double temp = tc.ambient_c;
  const double floor_ghz = 0.8;

  for (double t = 0.0; t <= duration_s; t += tc.dt_s) {
    double p = package_power(c, isa, active_cores, f);
    // First-order RC integration.
    double dT = (p - (temp - tc.ambient_c) / tc.r_th_c_per_w) /
                tc.c_th_j_per_c;
    temp += dT * tc.dt_s;
    trace.push_back(ThermalSample{t, f, temp, p});
    if (c.frequency_fixed) continue;
    // Governor: react to temperature and the TDP power limit.
    if (temp > tc.t_max_c || p > c.tdp_w) {
      f = std::max(floor_ghz, f - tc.step_hz);
    } else if (temp < tc.t_max_c - 2.0 && p < c.tdp_w * 0.98) {
      f = std::min(c.license_cap(isa), f + tc.step_hz);
    }
  }
  return trace;
}

double sustained_from_trace(const std::vector<ThermalSample>& trace) {
  if (trace.empty()) return 0.0;
  std::size_t start = trace.size() - trace.size() / 5;
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = start; i < trace.size(); ++i) {
    sum += trace[i].frequency_ghz;
    ++n;
  }
  return n ? sum / n : 0.0;
}

}  // namespace incore::power
