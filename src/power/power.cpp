#include "power/power.hpp"

#include <algorithm>
#include <cmath>

namespace incore::power {

const char* to_string(IsaClass isa) {
  switch (isa) {
    case IsaClass::Scalar: return "scalar";
    case IsaClass::Sse: return "SSE";
    case IsaClass::Avx: return "AVX";
    case IsaClass::Avx512: return "AVX-512";
    case IsaClass::Neon: return "NEON";
    case IsaClass::Sve: return "SVE";
  }
  return "?";
}

const std::vector<IsaClass>& isa_classes_for(uarch::Micro m) {
  static const std::vector<IsaClass> x86 = {IsaClass::Scalar, IsaClass::Sse,
                                            IsaClass::Avx, IsaClass::Avx512};
  static const std::vector<IsaClass> arm = {IsaClass::Scalar, IsaClass::Neon,
                                            IsaClass::Sve};
  return m == uarch::Micro::NeoverseV2 ? arm : x86;
}

double ChipPowerModel::dyn_coeff(IsaClass isa) const {
  switch (isa) {
    case IsaClass::Scalar: return coeff_scalar;
    case IsaClass::Sse:
    case IsaClass::Neon: return coeff_sse;
    case IsaClass::Avx:
    case IsaClass::Sve: return coeff_avx;
    case IsaClass::Avx512: return coeff_avx512;
  }
  return coeff_scalar;
}

double ChipPowerModel::license_cap(IsaClass isa) const {
  if (isa == IsaClass::Avx512 && cap_avx512_ghz > 0.0) return cap_avx512_ghz;
  return turbo_ghz;
}

const ChipPowerModel& chip(uarch::Micro m) {
  // Coefficients calibrated so the full-socket solutions land on the
  // paper's Fig. 2 plateaus (see header comment).
  static const ChipPowerModel gcs = [] {
    ChipPowerModel c;
    c.name = "GCS";
    c.cores = 72;
    c.tdp_w = 250;
    c.uncore_w = 50;
    c.static_core_w = 0.3;
    c.base_ghz = 3.4;
    c.turbo_ghz = 3.4;
    c.frequency_fixed = true;  // no DVFS observed under load
    c.coeff_scalar = c.coeff_sse = c.coeff_avx = c.coeff_avx512 = 0.55;
    return c;
  }();
  static const ChipPowerModel spr = [] {
    ChipPowerModel c;
    c.name = "SPR";
    c.cores = 52;
    c.tdp_w = 350;
    c.uncore_w = 60;
    c.static_core_w = 0.5;
    c.base_ghz = 2.0;
    c.turbo_ghz = 3.8;
    c.v0 = 0.6;
    c.k = 0.12;
    c.coeff_scalar = 1.45;
    c.coeff_sse = 1.84;
    c.coeff_avx = 1.84;
    c.coeff_avx512 = 3.60;
    c.cap_avx512_ghz = 3.5;  // license cap: lower from the very first core
    return c;
  }();
  static const ChipPowerModel genoa = [] {
    ChipPowerModel c;
    c.name = "Genoa";
    c.cores = 96;
    c.tdp_w = 400;
    c.uncore_w = 65;
    c.static_core_w = 0.4;
    c.base_ghz = 2.55;
    c.turbo_ghz = 3.7;
    c.v0 = 0.6;
    c.k = 0.12;
    // The 256-bit datapath (AVX-512 double-pumped) draws the same power for
    // every vector ISA class: no ISA-dependent throttling on Genoa.
    c.coeff_scalar = c.coeff_sse = c.coeff_avx = c.coeff_avx512 = 1.055;
    return c;
  }();
  switch (m) {
    case uarch::Micro::NeoverseV2: return gcs;
    case uarch::Micro::GoldenCove: return spr;
    case uarch::Micro::Zen4: return genoa;
  }
  return gcs;
}

double sustained_frequency(uarch::Micro m, IsaClass isa, int active_cores) {
  const ChipPowerModel& c = chip(m);
  active_cores = std::clamp(active_cores, 1, c.cores);
  if (c.frequency_fixed) return c.base_ghz;

  const double cap = c.license_cap(isa);
  const double coeff = c.dyn_coeff(isa);
  auto power_at = [&](double f) {
    double v = c.v0 + c.k * f;
    return c.uncore_w +
           active_cores * (c.static_core_w + coeff * f * v * v);
  };
  if (power_at(cap) <= c.tdp_w) return cap;
  // Binary search the thermal solution; never below a floor of 0.8 GHz.
  double lo = 0.8;
  double hi = cap;
  for (int i = 0; i < 60; ++i) {
    double mid = 0.5 * (lo + hi);
    if (power_at(mid) <= c.tdp_w) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

PeakFlops peak_flops(uarch::Micro m) {
  PeakFlops p;
  const ChipPowerModel& c = chip(m);
  switch (m) {
    case uarch::Micro::NeoverseV2: {
      // 4 x 128-bit FMA pipes: 16 DP flops/cy; no extra ADD pipes.
      p.theoretical_tflops = c.cores * c.turbo_ghz * 16 * 1e-3;
      double f = sustained_frequency(m, IsaClass::Sve, c.cores);
      p.achievable_tflops = c.cores * f * 16 * 1e-3;
      break;
    }
    case uarch::Micro::GoldenCove: {
      // 2 x 512-bit FMA pipes: 32 DP flops/cy.
      p.theoretical_tflops = c.cores * c.turbo_ghz * 32 * 1e-3;
      double f = sustained_frequency(m, IsaClass::Avx512, c.cores);
      p.achievable_tflops = c.cores * f * 32 * 1e-3;
      break;
    }
    case uarch::Micro::Zen4: {
      // Marketing peak counts FMA (16) + FADD (8) pipes: 24 DP flops/cy;
      // an FMA kernel can use only the two FMA pipes (16 flops/cy).
      p.theoretical_tflops = c.cores * c.turbo_ghz * 24 * 1e-3;
      double f = sustained_frequency(m, IsaClass::Avx512, c.cores);
      p.achievable_tflops = c.cores * f * 16 * 1e-3;
      break;
    }
  }
  return p;
}

}  // namespace incore::power
