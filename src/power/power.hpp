#pragma once
// TDP-constrained sustained-frequency model (paper Fig. 2 and Table I).
//
// Each chip runs arithmetic-heavy code on `n` active cores.  The sustained
// frequency is the largest f satisfying
//
//   P(n, f) = P_uncore + n * (P_static + c_isa * f * V(f)^2)  <=  TDP
//
// additionally capped by the single-core boost limit and by per-ISA license
// frequency caps (Intel's AVX-512 license classes).  V(f) is an affine
// voltage/frequency curve.  Calibrated effects reproduced from the paper:
//
//   * GCS sustains its 3.4 GHz base for every ISA at all 72 cores;
//   * SPR starts lower for AVX-512 ("different behaviour right from the
//     start" -- a license cap), drops to 2.0 GHz at full socket (53% of the
//     3.8 GHz turbo) while SSE/AVX sustain 3.0 GHz (78%);
//   * Genoa drops to ~3.1 GHz (84% of 3.7 GHz turbo), independent of ISA.

#include "uarch/model.hpp"

namespace incore::power {

enum class IsaClass { Scalar, Sse, Avx, Avx512, Neon, Sve };

[[nodiscard]] const char* to_string(IsaClass isa);

/// ISA classes that exist on a given machine.
[[nodiscard]] const std::vector<IsaClass>& isa_classes_for(uarch::Micro m);

struct ChipPowerModel {
  const char* name = "?";
  int cores = 1;
  double tdp_w = 100;
  double uncore_w = 30;
  double static_core_w = 0.3;
  double base_ghz = 2.0;   // guaranteed base frequency
  double turbo_ghz = 3.0;  // single-core boost
  // Affine voltage curve V(f) = v0 + k * f (volts, f in GHz).
  double v0 = 0.55;
  double k = 0.12;

  /// Switching-capacitance coefficient per ISA class (W / (GHz * V^2)).
  [[nodiscard]] double dyn_coeff(IsaClass isa) const;
  /// License-based frequency cap per ISA class (GHz).
  [[nodiscard]] double license_cap(IsaClass isa) const;

  double coeff_scalar = 1.0;
  double coeff_sse = 1.2;
  double coeff_avx = 1.5;
  double coeff_avx512 = 2.2;
  double cap_avx512_ghz = 0.0;  // 0 = no cap below turbo
  bool frequency_fixed = false; // Grace: no DVFS under load at all
};

[[nodiscard]] const ChipPowerModel& chip(uarch::Micro m);

/// Sustained frequency (GHz) for arithmetic-heavy code of the given ISA
/// class with `active_cores` busy.
[[nodiscard]] double sustained_frequency(uarch::Micro m, IsaClass isa,
                                         int active_cores);

/// Peak floating-point throughput bookkeeping for Table I.
struct PeakFlops {
  double theoretical_tflops = 0;  // marketing peak: all FP pipes, max clock
  double achievable_tflops = 0;   // FMA-only kernel at sustained clock
};
[[nodiscard]] PeakFlops peak_flops(uarch::Micro m);

}  // namespace incore::power
