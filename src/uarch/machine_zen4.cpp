// Machine model: AMD Zen 4 (Genoa, EPYC 9684X).
//
// Port layout (13 ports):
//   ALU0..ALU3    integer ALUs (4 units; branches resolve on ALU0/ALU1)
//   AGU0..AGU2    address generation: loads on AGU0/AGU1 (2x256-bit loads/cy),
//                 store addresses on AGU2 (1 store/cy)
//   FP0..FP3      FP/vector pipes (FMUL/FMA on FP0/FP1, FADD on FP2/FP3)
//   FST0,FST1     FP store-data pipes (a 256-bit store occupies both)
//
// Zen 4 executes AVX-512 by double-pumping the 256-bit datapath: every
// 512-bit op is two 256-bit micro-ops on the same ports.
//
// Headline values anchored to the paper's Table III:
//   VEC(4xDP) ADD/MUL/FMA: 2/cy -> 8 elem/cy, lat 3/3/4
//   scalar    ADD/MUL/FMA: 2/cy,              lat 3/3/4
//   VEC FDIV ymm: inv 5 (0.8 elem/cy), lat 13; scalar: inv 5, lat 13
//   gather: 1/8 cache line per cycle, lat 13

#include <string>

#include "support/strings.hpp"
#include "uarch/builder.hpp"
#include "uarch/model.hpp"

namespace incore::uarch::detail {

MachineModel build_zen4() {
  MachineModel mm("zen4", Micro::Zen4, asmir::Isa::X86_64,
                  {"ALU0", "ALU1", "ALU2", "ALU3", "AGU0", "AGU1", "AGU2",
                   "FP0", "FP1", "FP2", "FP3", "FST0", "FST1"});
  mm.simd_width_bits = 256;
  mm.l1_load_latency = 4.0;
  mm.loads_per_cycle = 2;
  mm.stores_per_cycle = 1;
  CoreResources& r = mm.resources();
  r.decode_width = 6;  // op-cache sustained
  r.rename_width = 6;
  r.retire_width = 6;
  r.rob_size = 320;
  r.scheduler_size = 96;
  r.load_queue = 88;
  r.store_queue = 64;

  const FormReg F(mm);

  // ---- Integer ALU -------------------------------------------------------
  const std::string kAlu = port_group_matching(mm, {"ALU"});
  for (const char* w : {"r64", "r32"}) {
    for (const char* op : {"add", "sub", "and", "or", "xor"}) {
      F(support::format("%s %s,%s", op, w, w), 0.25, 1, kAlu);
      F(support::format("%s i,%s", op, w), 0.25, 1, kAlu);
    }
    for (const char* op : {"inc", "dec", "neg", "not"}) {
      F(support::format("%s %s", op, w), 0.25, 1, kAlu);
    }
    F(support::format("cmp %s,%s", w, w), 0.25, 1, kAlu);
    F(support::format("cmp i,%s", w), 0.25, 1, kAlu);
    F(support::format("test %s,%s", w, w), 0.25, 1, kAlu);
    F(support::format("test i,%s", w), 0.25, 1, kAlu);
    F(support::format("mov %s,%s", w, w), 0.25, 1, kAlu);  // pre-elimination
    F(support::format("mov i,%s", w), 0.25, 1, kAlu);
    for (const char* op : {"shl", "sal", "shr", "sar"}) {
      F(support::format("%s i,%s", op, w), 0.5, 1, "ALU1|ALU2");
      F(support::format("%s %s", op, w), 0.5, 1, "ALU1|ALU2");
    }
    F(support::format("imul %s,%s", w, w), 1.0, 3, "ALU1");
    F(support::format("imul i,%s,%s", w, w), 1.0, 3, "ALU1");
    F(support::format("lea m64,%s", w), 0.25, 1, kAlu);
    F(support::format("cmove %s,%s", w, w), 0.25, 1, kAlu);
    F(support::format("cmovne %s,%s", w, w), 0.25, 1, kAlu);
    F(support::format("cmovl %s,%s", w, w), 0.25, 1, kAlu);
    F(support::format("cmovg %s,%s", w, w), 0.25, 1, kAlu);
  }
  F("movslq r32,r64", 0.25, 1, kAlu);
  F("nop", 0.125, 0, "");

  // ---- Branches ----------------------------------------------------------
  for (const char* b : {"jmp", "je", "jne", "jz", "jnz", "jg", "jge", "jl",
                        "jle", "ja", "jae", "jb", "jbe", "js", "jns"}) {
    F(support::format("%s l", b), 0.5, 1, "ALU0|ALU1");
  }
  F("call l", 1.0, 2, "ALU0|ALU1;FST0|FST1;AGU2");
  F("ret", 1.0, 2, "ALU0|ALU1;AGU0|AGU1");

  // ---- Loads -------------------------------------------------------------
  const std::string kLd = port_group(mm, {"AGU0", "AGU1"});
  F("mov m64,r64", 0.5, 4, kLd);
  F("mov m32,r32", 0.5, 4, kLd);
  F("movslq m32,r64", 0.5, 4, kLd);
  F("movzbl m8,r32", 0.5, 4, kLd);
  for (const char* m : {"vmovupd", "vmovapd", "vmovups", "vmovaps", "vmovdqu",
                        "vmovdqa", "vmovdqu64", "vmovdqa64"}) {
    F(support::format("%s m512,v512", m), 1.0, 7, "2xAGU0|AGU1");
    F(support::format("%s m256,v256", m), 0.5, 7, kLd);
    F(support::format("%s m128,v128", m), 0.5, 7, kLd);
  }
  for (const char* m : {"movupd", "movapd", "movsd", "vmovsd", "movss",
                        "vmovss"}) {
    int w = (std::string(m).find("sd") != std::string::npos) ? 64
            : (std::string(m).find("ss") != std::string::npos) ? 32
                                                               : 128;
    F(support::format("%s m%d,v128", m, w), 0.5, 7, kLd);
  }
  F("vbroadcastsd m64,v512", 1.0, 8, "2xAGU0|AGU1");
  F("vbroadcastsd m64,v256", 0.5, 8, kLd);
  F("vmovddup m64,v128", 0.5, 8, kLd);
  F("_load.m8", 0.5, 4, kLd);
  F("_load.m16", 0.5, 4, kLd);
  F("_load.m32", 0.5, 4, kLd);
  F("_load.m64", 0.5, 4, kLd);
  F("_load.m128", 0.5, 7, kLd);
  F("_load.m256", 0.5, 7, kLd);
  F("_load.m512", 1.0, 7, "2xAGU0|AGU1");
  // Gathers: Table III: 1/8 cache line per cycle, latency 13.  A ymm gather
  // collects 4 DP elements (worst case 4 lines -> 32 cy).
  F("vgatherdpd g256,v256,k", 32.0, 13, "4xAGU0|AGU1");
  F("vgatherqpd g256,v256,k", 32.0, 13, "4xAGU0|AGU1");
  F("vgatherdpd g512,v512,k", 64.0, 13, "8xAGU0|AGU1");
  F("vgatherqpd g512,v512,k", 64.0, 13, "8xAGU0|AGU1");
  F("_gather.m256", 32.0, 13, "4xAGU0|AGU1");
  F("_gather.m512", 64.0, 13, "8xAGU0|AGU1");

  // ---- Stores ------------------------------------------------------------
  // Store-data pipes FST0/FST1; one store-address AGU -> 1 store/cy.
  F("mov r64,m64", 1.0, 1, "FST0|FST1;AGU2");
  F("mov r32,m32", 1.0, 1, "FST0|FST1;AGU2");
  F("mov i,m64", 1.0, 1, "FST0|FST1;AGU2");
  F("mov i,m32", 1.0, 1, "FST0|FST1;AGU2");
  for (const char* m : {"vmovupd", "vmovapd", "vmovups", "vmovaps",
                        "vmovdqu64"}) {
    F(support::format("%s v512,m512", m), 2.0, 1, "2xFST0;2xFST1;2xAGU2");
    F(support::format("%s v256,m256", m), 1.0, 1, "FST0;FST1;AGU2");
    F(support::format("%s v128,m128", m), 1.0, 1, "FST0|FST1;AGU2");
  }
  F("movupd v128,m128", 1.0, 1, "FST0|FST1;AGU2");
  F("movapd v128,m128", 1.0, 1, "FST0|FST1;AGU2");
  F("movsd v128,m64", 1.0, 1, "FST0|FST1;AGU2");
  F("vmovsd v128,m64", 1.0, 1, "FST0|FST1;AGU2");
  // Non-temporal stores.
  F("vmovntpd v512,m512", 2.0, 1, "2xFST0;2xFST1;2xAGU2");
  F("vmovntpd v256,m256", 1.0, 1, "FST0;FST1;AGU2");
  F("movntpd v128,m128", 1.0, 1, "FST0|FST1;AGU2");
  F("movnti r64,m64", 1.0, 1, "FST0|FST1;AGU2");
  F("_store.m32", 1.0, 1, "FST0|FST1;AGU2");
  F("_store.m64", 1.0, 1, "FST0|FST1;AGU2");
  F("_store.m128", 1.0, 1, "FST0|FST1;AGU2");
  F("_store.m256", 1.0, 1, "FST0;FST1;AGU2");
  F("_store.m512", 2.0, 1, "2xFST0;2xFST1;2xAGU2");

  // ---- FP / vector arithmetic -------------------------------------------
  // FADD on FP2/FP3 (lat 3), FMUL/FMA on FP0/FP1 (lat 3/4).
  const std::string kFAdd = port_group(mm, {"FP2", "FP3"});
  const std::string kFMul = port_group(mm, {"FP0", "FP1"});
  for (const char* wreg : {"v256", "v128"}) {
    for (const char* op : {"vaddpd", "vsubpd", "vaddps", "vsubps", "vmaxpd",
                           "vminpd"}) {
      F(support::format("%s %s,%s,%s", op, wreg, wreg, wreg), 0.5, 3, kFAdd);
    }
    for (const char* op : {"vmulpd", "vmulps"}) {
      F(support::format("%s %s,%s,%s", op, wreg, wreg, wreg), 0.5, 3, kFMul);
    }
    for (const char* fam : {"vfmadd", "vfmsub", "vfnmadd", "vfnmsub"}) {
      for (const char* v : {"132", "213", "231"}) {
        F(support::format("%s%spd %s,%s,%s", fam, v, wreg, wreg, wreg), 0.5, 4,
          kFMul);
      }
    }
  }
  // 512-bit forms: double-pumped (2 micro-ops, inv throughput 1).
  for (const char* op : {"vaddpd", "vsubpd", "vmaxpd", "vminpd"}) {
    F(support::format("%s v512,v512,v512", op), 1.0, 3, "2xFP2|FP3");
  }
  F("vmulpd v512,v512,v512", 1.0, 3, "2xFP0|FP1");
  for (const char* fam : {"vfmadd", "vfmsub", "vfnmadd", "vfnmsub"}) {
    for (const char* v : {"132", "213", "231"}) {
      F(support::format("%s%spd v512,v512,v512", fam, v), 1.0, 4, "2xFP0|FP1");
    }
  }
  // Scalar arithmetic: ADD lat 3, MUL 3, FMA 4 (Table III).
  for (const char* op : {"addsd", "vaddsd", "subsd", "vsubsd", "addss",
                         "vaddss", "maxsd", "vmaxsd", "minsd", "vminsd"}) {
    bool three_op = op[0] == 'v';
    F(three_op ? support::format("%s v128,v128,v128", op)
               : support::format("%s v128,v128", op),
      0.5, 3, kFAdd);
  }
  for (const char* op : {"mulsd", "vmulsd", "mulss", "vmulss"}) {
    bool three_op = op[0] == 'v';
    F(three_op ? support::format("%s v128,v128,v128", op)
               : support::format("%s v128,v128", op),
      0.5, 3, kFMul);
  }
  for (const char* fam : {"vfmadd", "vfmsub", "vfnmadd", "vfnmsub"}) {
    for (const char* v : {"132", "213", "231"}) {
      F(support::format("%s%ssd v128,v128,v128", fam, v), 0.5, 4, kFMul);
    }
  }
  // Divide / sqrt: divider behind FP1 (non-pipelined).
  F("vdivpd v512,v512,v512", 10.0, 13, "10xFP1");
  F("vdivpd v256,v256,v256", 5.0, 13, "5xFP1");
  F("vdivpd v128,v128,v128", 4.0, 13, "4xFP1");
  F("divpd v128,v128", 4.0, 13, "4xFP1");
  F("divsd v128,v128", 6.5, 13, "6.5xFP1");   // model value; silicon measures ~5
  F("vdivsd v128,v128,v128", 6.5, 13, "6.5xFP1");
  F("divss v128,v128", 3.5, 10, "3.5xFP1");
  F("vdivss v128,v128,v128", 3.5, 10, "3.5xFP1");
  F("vsqrtpd v256,v256", 9.0, 21, "9xFP1");
  F("sqrtsd v128,v128", 9.0, 21, "9xFP1");
  F("vsqrtsd v128,v128,v128", 9.0, 21, "9xFP1");
  // Bitwise / blend / moves.
  for (const char* wreg : {"v256", "v128"}) {
    for (const char* op : {"vxorpd", "vandpd", "vorpd", "vxorps", "vandps"}) {
      F(support::format("%s %s,%s,%s", op, wreg, wreg, wreg), 0.25, 1,
        "FP0|FP1|FP2|FP3");
    }
    F(support::format("vblendvpd %s,%s,%s,%s", wreg, wreg, wreg, wreg), 0.5, 1,
      "FP0|FP1");
    F(support::format("vmovapd %s,%s", wreg, wreg), 0.25, 1, "FP0|FP1|FP2|FP3");
    F(support::format("vmovupd %s,%s", wreg, wreg), 0.25, 1, "FP0|FP1|FP2|FP3");
  }
  F("vxorpd v512,v512,v512", 0.5, 1, "2xFP0|FP1|FP2|FP3");
  F("vmovapd v512,v512", 0.5, 1, "2xFP0|FP1|FP2|FP3");
  F("xorpd v128,v128", 0.25, 1, "FP0|FP1|FP2|FP3");
  F("movapd v128,v128", 0.25, 1, "FP0|FP1|FP2|FP3");
  F("movsd v128,v128", 0.5, 1, "FP0|FP1|FP2|FP3");
  F("vmovsd v128,v128,v128", 0.5, 1, "FP0|FP1|FP2|FP3");
  // Shuffles / permutes (FP1/FP2 shuffle network).
  F("vextractf128 i,v256,v128", 1.0, 4, "FP1|FP2");
  F("vextractf64x4 i,v512,v256", 1.0, 4, "FP1|FP2");
  F("vextractf64x2 i,v512,v128", 1.0, 4, "FP1|FP2");
  F("vperm2f128 i,v256,v256,v256", 1.0, 4, "FP1|FP2");
  F("vpermilpd i,v128,v128", 0.5, 1, "FP1|FP2");
  F("vpermilpd i,v256,v256", 0.5, 1, "FP1|FP2");
  F("vunpckhpd v128,v128,v128", 0.5, 1, "FP1|FP2");
  F("unpckhpd v128,v128", 0.5, 1, "FP1|FP2");
  F("vshufpd i,v256,v256,v256", 0.5, 1, "FP1|FP2");
  F("vhaddpd v128,v128,v128", 2.0, 6, "FP1|FP2;2xFP2");
  F("haddpd v128,v128", 2.0, 6, "FP1|FP2;2xFP2");
  F("vbroadcastsd v128,v512", 1.0, 4, "2xFP1|FP2");
  F("vbroadcastsd v128,v256", 1.0, 4, "FP1|FP2");
  // Converts.
  F("vcvtsi2sd r64,v128,v128", 1.0, 10, "ALU1;FP0|FP1");
  F("vcvtsi2sd r32,v128,v128", 1.0, 10, "ALU1;FP0|FP1");
  F("cvtsi2sd r64,v128", 1.0, 10, "ALU1;FP0|FP1");
  F("vcvttsd2si v128,r64", 1.0, 10, "FP0|FP1;ALU1");
  F("cvttsd2si v128,r64", 1.0, 10, "FP0|FP1;ALU1");
  F("vcvtdq2pd v128,v256", 1.0, 7, "FP1|FP2;FP0|FP1");
  // AVX-512 mask handling (Zen 4 supports AVX-512 with k registers).
  F("vcmppd i,v512,v512,k", 2.0, 5, "2xFP0|FP1");
  F("vcmppd i,v256,v256,k", 1.0, 5, "FP0|FP1");
  F("vcmppd i,v256,v256,v256", 0.5, 4, "FP0|FP1");
  F("kmovw k,k", 0.5, 1, "FP0|FP1");
  F("kmovw r32,k", 1.0, 3, "FP1");
  F("kmovw k,r32", 1.0, 3, "FP1");
  F("kmovb k,r32", 1.0, 3, "FP1");
  F("kortestw k,k", 1.0, 3, "FP1");
  F("kandw k,k,k", 0.5, 1, "FP0|FP1");
  F("knotw k,k", 0.5, 1, "FP0|FP1");
  F("vzeroupper", 0.25, 0, "");

  // ---- Extended coverage: integer SIMD -----------------------------------
  for (const char* wreg : {"v256", "v128"}) {
    const char* all_fp = "FP0|FP1|FP2|FP3";
    for (const char* op : {"vpaddd", "vpaddq", "vpsubd", "vpsubq", "vpminsd",
                           "vpmaxsd", "vpabsd"}) {
      F(support::format("%s %s,%s,%s", op, wreg, wreg, wreg), 0.25, 1, all_fp);
    }
    for (const char* op : {"vpand", "vpor", "vpxor", "vpandq", "vporq",
                           "vpxorq", "vpandn"}) {
      F(support::format("%s %s,%s,%s", op, wreg, wreg, wreg), 0.25, 1, all_fp);
    }
    F(support::format("vpmulld %s,%s,%s", wreg, wreg, wreg), 0.5, 3,
      "FP0|FP1");
    for (const char* op : {"vpsllq", "vpsrlq", "vpslld", "vpsrld"}) {
      F(support::format("%s i,%s,%s", op, wreg, wreg), 0.5, 1, "FP1|FP2");
    }
    for (const char* op : {"vaddpd", "vmulpd", "vfmadd231pd"}) {
      F(support::format("%s %s,%s,%s,k", op, wreg, wreg, wreg), 0.5,
        std::string(op) == "vfmadd231pd" ? 4 : 3,
        std::string(op) == "vaddpd" ? "FP2|FP3" : "FP0|FP1");
    }
    F(support::format("vmovupd %s,%s,k", wreg, wreg), 0.5, 1, all_fp);
  }
  // 512-bit double-pumped integer SIMD.
  for (const char* op : {"vpaddd", "vpaddq", "vpxorq", "vpandq"}) {
    F(support::format("%s v512,v512,v512", op), 0.5, 1,
      "2xFP0|FP1|FP2|FP3");
  }
  F("vmovupd m512,v512,k", 1.0, 8, "2xAGU0|AGU1");
  F("vmovupd m256,v256,k", 0.5, 8, kLd);
  F("vmovupd v512,m512,k", 2.0, 1, "2xFST0;2xFST1;2xAGU2");
  F("vmovupd v256,m256,k", 1.0, 1, "FST0;FST1;AGU2");
  // Single precision / conversions.
  F("vdivps v256,v256,v256", 4.0, 10, "4xFP1");
  F("vsqrtps v256,v256", 7.0, 18, "7xFP1");
  F("vcvtpd2ps v512,v256", 2.0, 7, "2xFP1|FP2");
  F("vcvtps2pd v256,v512", 2.0, 7, "2xFP1|FP2");
  F("vcvtdq2pd v256,v512", 2.0, 7, "2xFP1|FP2");
  F("vpermpd i,v256,v256", 1.0, 4, "FP1|FP2");
  F("vpermd v256,v256,v256", 1.0, 4, "FP1|FP2");
  F("vinsertf128 i,v128,v256,v256", 1.0, 4, "FP1|FP2");
  F("vpbroadcastd v128,v256", 1.0, 4, "FP1|FP2");
  // Integer scalar odds and ends.
  for (const char* w : {"r64", "r32"}) {
    F(support::format("popcnt %s,%s", w, w), 0.25, 1, kAlu);
    F(support::format("lzcnt %s,%s", w, w), 0.25, 1, kAlu);
    F(support::format("tzcnt %s,%s", w, w), 0.25, 1, kAlu);
    F(support::format("bswap %s", w), 0.5, 1, "ALU0|ALU1");
    F(support::format("adc %s,%s", w, w), 0.25, 1, kAlu);
    F(support::format("sbb %s,%s", w, w), 0.25, 1, kAlu);
    F(support::format("rol i,%s", w), 0.5, 1, "ALU1|ALU2");
    F(support::format("ror i,%s", w), 0.5, 1, "ALU1|ALU2");
    F(support::format("sete %s", w), 0.25, 1, kAlu);
    F(support::format("setne %s", w), 0.25, 1, kAlu);
  }
  F("div r64", 14.0, 14, "14xALU2");  // Zen 4's fast radix divider
  F("idiv r64", 14.0, 14, "14xALU2");
  F("mul r64", 1.0, 3, "ALU1");
  F("movzwl m16,r32", 0.5, 4, kLd);
  F("movsbl m8,r32", 0.5, 4, kLd);

  return mm;
}

}  // namespace incore::uarch::detail
