#include "uarch/mdf.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace incore::uarch {

using support::ModelError;
using support::format;
using support::split;
using support::split_lines;
using support::trim;

const char* family_name(Micro m) {
  switch (m) {
    case Micro::NeoverseV2: return "neoverse-v2";
    case Micro::GoldenCove: return "golden-cove";
    case Micro::Zen4: return "zen4";
  }
  return "?";
}

bool family_from_name(std::string_view name, Micro& out) {
  const std::string n = support::to_lower(name);
  if (n == "neoverse-v2") {
    out = Micro::NeoverseV2;
  } else if (n == "golden-cove") {
    out = Micro::GoldenCove;
  } else if (n == "zen4") {
    out = Micro::Zen4;
  } else {
    return false;
  }
  return true;
}

namespace {

const char* isa_name(asmir::Isa isa) {
  return isa == asmir::Isa::AArch64 ? "aarch64" : "x86_64";
}

bool isa_from_name(std::string_view name, asmir::Isa& out) {
  if (name == "aarch64") {
    out = asmir::Isa::AArch64;
  } else if (name == "x86_64") {
    out = asmir::Isa::X86_64;
  } else {
    return false;
  }
  return true;
}

/// Shortest decimal string that parses back to exactly `v` (doubles need at
/// most 17 significant digits).  Keeps exported files human-readable ("0.5",
/// "10" — never "1e+01") while guaranteeing byte-identical predictions
/// after a reload.
std::string round_trip_number(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v > -1e15 && v < 1e15) {
    return format("%lld", static_cast<long long>(v));
  }
  for (int prec = 1; prec <= 17; ++prec) {
    std::string s = format("%.*g", prec, v);
    if (std::strtod(s.c_str(), nullptr) == v) return s;
  }
  return format("%.17g", v);
}

/// '|'-joined port names of a mask, in port-declaration order.
std::string mask_spec(const MachineModel& mm, PortMask mask) {
  std::string out;
  for (std::size_t i = 0; i < mm.port_count(); ++i) {
    if ((mask >> i) & 1u) {
      if (!out.empty()) out += '|';
      out += mm.ports()[i];
    }
  }
  return out;
}

/// The ';'-separated occupancy spec MachineModel::add understands; "-" for
/// forms with no port use (eliminated moves, nops).
std::string ports_spec(const MachineModel& mm, const InstrPerf& perf) {
  if (perf.port_uses.empty()) return "-";
  std::string out;
  for (const PortUse& pu : perf.port_uses) {
    if (!out.empty()) out += ';';
    if (pu.cycles != 1.0) {
      out += round_trip_number(pu.cycles);
      out += 'x';
    }
    out += mask_spec(mm, pu.mask);
  }
  return out;
}

/// Parser context: one diagnostic shape everywhere.
struct Cursor {
  std::string source;
  int line = 0;

  [[noreturn]] void fail(const std::string& message) const {
    throw ModelError(format("%s:%d: %s", source.c_str(), line, message.c_str()));
  }

  double number(std::string_view field, std::string_view what) const {
    const std::string s(field);
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (s.empty() || end != s.c_str() + s.size())
      fail(format("expected a number for %s, got '%s'",
                  std::string(what).c_str(), s.c_str()));
    return v;
  }

  int integer(std::string_view field, std::string_view what) const {
    const double v = number(field, what);
    const int i = static_cast<int>(v);
    if (static_cast<double>(i) != v)
      fail(format("expected an integer for %s, got '%s'",
                  std::string(what).c_str(), std::string(field).c_str()));
    return i;
  }
};

/// Splits a header line "key v1 v2 ..." into whitespace-separated fields.
std::vector<std::string_view> fields_of(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
    if (j > i) out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

}  // namespace

std::string save_machine_string(const MachineModel& mm) {
  std::string out;
  out += "# incore machine description; grammar in docs/machine-format.md.\n";
  out += "# Edit, version and reload with `incore-cli ... --machine-file`;\n";
  out += "# no recompilation required.\n";
  out += "mdf 1\n";
  out += "machine " + mm.name() + '\n';
  out += std::string("family ") + family_name(mm.micro()) + '\n';
  out += std::string("isa ") + isa_name(mm.isa()) + '\n';
  out += "ports";
  for (const std::string& p : mm.ports()) out += ' ' + p;
  out += '\n';
  out += "simd_width_bits " + format("%d", mm.simd_width_bits) + '\n';
  out += "l1_load_latency " + round_trip_number(mm.l1_load_latency) + '\n';
  out += "loads_per_cycle " + format("%d", mm.loads_per_cycle) + '\n';
  out += "stores_per_cycle " + format("%d", mm.stores_per_cycle) + '\n';
  const CoreResources& r = mm.resources();
  out += format(
      "resources decode=%d rename=%d retire=%d rob=%d scheduler=%d "
      "load_queue=%d store_queue=%d\n",
      r.decode_width, r.rename_width, r.retire_width, r.rob_size,
      r.scheduler_size, r.load_queue, r.store_queue);
  const CacheParams& c = mm.cache;
  out += format(
      "cache l1=%lld/%d l2=%lld/%d l3=%lld/%d line=%d prefetch_streams=%d\n",
      c.l1_bytes, c.l1_ways, c.l2_bytes, c.l2_ways, c.l3_bytes, c.l3_ways,
      c.line_bytes, c.prefetch_streams);
  const HierarchyParams& h = mm.hierarchy;
  out += "hierarchy l1_l2=" + round_trip_number(h.cy_per_cl_l1_l2) +
         " l2_l3=" + round_trip_number(h.cy_per_cl_l2_l3) +
         " l3_mem=" + round_trip_number(h.cy_per_cl_l3_mem) +
         " socket_cl_per_cy=" + round_trip_number(h.socket_cl_per_cy) +
         format(" cores=%d wa_evasion=%d\n", h.socket_cores,
                h.write_allocate_evaded ? 1 : 0);

  std::vector<std::string> forms = mm.forms();
  std::sort(forms.begin(), forms.end());
  out += "forms " + format("%zu", forms.size()) + '\n';
  // form <inv_tput> <latency> <uops> <acc_latency> <ports> <form text>
  for (const std::string& f : forms) {
    const InstrPerf* perf = mm.find(f);
    out += "form " + round_trip_number(perf->inverse_throughput) + ' ' +
           round_trip_number(perf->latency) + ' ' +
           round_trip_number(perf->uops) + ' ' +
           round_trip_number(perf->accumulator_latency) + ' ' +
           ports_spec(mm, *perf) + ' ' + f + '\n';
  }
  return out;
}

void save_machine_file(const MachineModel& mm, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw ModelError("cannot write machine file " + path);
  const std::string text = save_machine_string(mm);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) throw ModelError("write failed for machine file " + path);
}

MachineModel load_machine_string(std::string_view text,
                                 std::string_view source_name) {
  Cursor at;
  at.source = std::string(source_name);

  bool saw_version = false;
  std::optional<std::string> name;
  std::optional<Micro> family;
  std::optional<asmir::Isa> isa;
  std::optional<std::vector<std::string>> ports;
  std::optional<int> simd_width_bits;
  std::optional<double> l1_load_latency;
  std::optional<int> loads_per_cycle;
  std::optional<int> stores_per_cycle;
  CoreResources res;
  std::optional<CacheParams> cache;
  std::optional<HierarchyParams> hierarchy;
  std::optional<std::size_t> declared_forms;
  std::size_t parsed_forms = 0;
  std::optional<MachineModel> mm;

  for (std::string_view raw : split_lines(text)) {
    ++at.line;
    const std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') continue;

    // First field = directive key; the form directive keeps the tail intact
    // (form text contains spaces).
    std::size_t key_end = line.find_first_of(" \t");
    const std::string_view key = line.substr(0, key_end);
    const std::string_view rest =
        key_end == std::string_view::npos ? std::string_view{}
                                          : trim(line.substr(key_end));

    if (!saw_version) {
      if (key != "mdf") at.fail("file must start with the 'mdf 1' version line");
      if (rest != "1")
        at.fail(format("unsupported mdf version '%s' (this reader handles 1)",
                       std::string(rest).c_str()));
      saw_version = true;
      continue;
    }

    if (key == "form") {
      if (!mm) {
        // All header material must precede the first form.
        if (!name) at.fail("missing 'machine' header line before forms");
        if (!family) at.fail("missing 'family' header line before forms");
        if (!isa) at.fail("missing 'isa' header line before forms");
        if (!ports) at.fail("missing 'ports' header line before forms");
        mm.emplace(*name, *family, *isa, *ports);
        if (simd_width_bits) mm->simd_width_bits = *simd_width_bits;
        if (l1_load_latency) mm->l1_load_latency = *l1_load_latency;
        if (loads_per_cycle) mm->loads_per_cycle = *loads_per_cycle;
        if (stores_per_cycle) mm->stores_per_cycle = *stores_per_cycle;
        if (cache) mm->cache = *cache;
        if (hierarchy) mm->hierarchy = *hierarchy;
        mm->resources() = res;
      }
      // form <inv_tput> <latency> <uops> <acc_latency> <ports> <form text>
      std::vector<std::string_view> head;
      std::string_view tail = rest;
      while (head.size() < 5) {
        tail = trim(tail);
        const std::size_t sp = tail.find_first_of(" \t");
        if (tail.empty() || sp == std::string_view::npos)
          at.fail("truncated form line (need inverse-throughput, latency, "
                  "uops, accumulator-latency, ports and the form text)");
        head.push_back(tail.substr(0, sp));
        tail = tail.substr(sp);
      }
      const std::string_view form_text = trim(tail);
      if (form_text.empty())
        at.fail("truncated form line (missing the form text)");
      const double tp = at.number(head[0], "inverse throughput");
      const double lat = at.number(head[1], "latency");
      const double uops = at.number(head[2], "uops");
      const double acc = at.number(head[3], "accumulator latency");
      const std::string spec =
          head[4] == "-" ? std::string() : std::string(head[4]);
      try {
        mm->add(form_text, tp, lat, spec, uops);
      } catch (const ModelError& e) {
        at.fail(e.what());
      }
      if (acc != 0.0) mm->set_accumulator_latency(form_text, acc);
      ++parsed_forms;
      continue;
    }

    if (mm) at.fail(format("header line '%s' after the first form",
                           std::string(key).c_str()));

    if (key == "machine") {
      if (rest.empty()) at.fail("'machine' needs a name");
      name = std::string(rest);
    } else if (key == "family") {
      Micro m{};
      if (!family_from_name(rest, m))
        at.fail(format("unknown family '%s' (known: neoverse-v2, "
                       "golden-cove, zen4)",
                       std::string(rest).c_str()));
      family = m;
    } else if (key == "isa") {
      asmir::Isa i{};
      if (!isa_from_name(rest, i))
        at.fail(format("unknown isa '%s' (known: aarch64, x86_64)",
                       std::string(rest).c_str()));
      isa = i;
    } else if (key == "ports") {
      std::vector<std::string> names;
      for (std::string_view f : fields_of(rest)) names.emplace_back(f);
      if (names.empty()) at.fail("'ports' needs at least one port name");
      ports = std::move(names);
    } else if (key == "simd_width_bits") {
      simd_width_bits = at.integer(rest, "simd_width_bits");
    } else if (key == "l1_load_latency") {
      l1_load_latency = at.number(rest, "l1_load_latency");
    } else if (key == "loads_per_cycle") {
      loads_per_cycle = at.integer(rest, "loads_per_cycle");
    } else if (key == "stores_per_cycle") {
      stores_per_cycle = at.integer(rest, "stores_per_cycle");
    } else if (key == "cache") {
      // Missing levels keep the family default (backwards compatibility
      // with pre-cache MDF files).
      CacheParams c = cache.value_or(
          family ? default_cache_params(*family) : CacheParams{});
      for (std::string_view f : fields_of(rest)) {
        const std::size_t eq = f.find('=');
        if (eq == std::string_view::npos)
          at.fail(format("cache expects key=value pairs, got '%s'",
                         std::string(f).c_str()));
        const std::string_view k = f.substr(0, eq);
        const std::string_view v = f.substr(eq + 1);
        auto level = [&](long long& bytes, int& ways) {
          const std::size_t slash = v.find('/');
          if (slash == std::string_view::npos)
            at.fail(format("cache level '%s' expects <bytes>/<ways>, got "
                           "'%s'",
                           std::string(k).c_str(), std::string(v).c_str()));
          bytes = static_cast<long long>(
              at.number(v.substr(0, slash), "cache size"));
          ways = at.integer(v.substr(slash + 1), "cache ways");
          if (bytes <= 0 || ways <= 0)
            at.fail(format("cache level '%s' must be positive",
                           std::string(k).c_str()));
        };
        if (k == "l1") {
          level(c.l1_bytes, c.l1_ways);
        } else if (k == "l2") {
          level(c.l2_bytes, c.l2_ways);
        } else if (k == "l3") {
          level(c.l3_bytes, c.l3_ways);
        } else if (k == "line") {
          c.line_bytes = at.integer(v, "cache line bytes");
          if (c.line_bytes <= 0) at.fail("cache line bytes must be positive");
        } else if (k == "prefetch_streams") {
          c.prefetch_streams = at.integer(v, "prefetch_streams");
          if (c.prefetch_streams <= 0)
            at.fail("prefetch_streams must be positive");
        } else {
          at.fail(format("unknown cache field '%s'", std::string(k).c_str()));
        }
      }
      cache = c;
    } else if (key == "hierarchy") {
      // Missing fields keep the family default (backwards compatibility
      // with pre-hierarchy MDF files).
      HierarchyParams h = hierarchy.value_or(
          family ? default_hierarchy_params(*family) : HierarchyParams{});
      for (std::string_view f : fields_of(rest)) {
        const std::size_t eq = f.find('=');
        if (eq == std::string_view::npos)
          at.fail(format("hierarchy expects key=value pairs, got '%s'",
                         std::string(f).c_str()));
        const std::string_view k = f.substr(0, eq);
        const std::string_view v = f.substr(eq + 1);
        auto positive = [&](std::string_view what) {
          const double d = at.number(v, what);
          if (d <= 0)
            at.fail(format("hierarchy field '%s' must be positive",
                           std::string(k).c_str()));
          return d;
        };
        if (k == "l1_l2") {
          h.cy_per_cl_l1_l2 = positive("hierarchy l1_l2 cycles per line");
        } else if (k == "l2_l3") {
          h.cy_per_cl_l2_l3 = positive("hierarchy l2_l3 cycles per line");
        } else if (k == "l3_mem") {
          h.cy_per_cl_l3_mem = positive("hierarchy l3_mem cycles per line");
        } else if (k == "socket_cl_per_cy") {
          h.socket_cl_per_cy = positive("hierarchy socket lines per cycle");
        } else if (k == "cores") {
          h.socket_cores = at.integer(v, "hierarchy socket cores");
          if (h.socket_cores <= 0)
            at.fail("hierarchy field 'cores' must be positive");
        } else if (k == "wa_evasion") {
          const int b = at.integer(v, "hierarchy wa_evasion flag");
          if (b != 0 && b != 1)
            at.fail("hierarchy field 'wa_evasion' must be 0 or 1");
          h.write_allocate_evaded = b == 1;
        } else {
          at.fail(
              format("unknown hierarchy field '%s'", std::string(k).c_str()));
        }
      }
      hierarchy = h;
    } else if (key == "forms") {
      declared_forms =
          static_cast<std::size_t>(at.integer(rest, "forms count"));
    } else if (key == "resources") {
      for (std::string_view f : fields_of(rest)) {
        const std::size_t eq = f.find('=');
        if (eq == std::string_view::npos)
          at.fail(format("resources expects key=value pairs, got '%s'",
                         std::string(f).c_str()));
        const std::string_view k = f.substr(0, eq);
        const int v = at.integer(f.substr(eq + 1), k);
        if (k == "decode") {
          res.decode_width = v;
        } else if (k == "rename") {
          res.rename_width = v;
        } else if (k == "retire") {
          res.retire_width = v;
        } else if (k == "rob") {
          res.rob_size = v;
        } else if (k == "scheduler") {
          res.scheduler_size = v;
        } else if (k == "load_queue") {
          res.load_queue = v;
        } else if (k == "store_queue") {
          res.store_queue = v;
        } else {
          at.fail(format("unknown resource '%s'", std::string(k).c_str()));
        }
      }
    } else {
      at.fail(format("unknown directive '%s'", std::string(key).c_str()));
    }
  }

  ++at.line;  // EOF diagnostics point one past the last line
  if (!saw_version) at.fail("empty file (expected the 'mdf 1' version line)");
  if (!mm) at.fail("truncated file: no instruction forms");
  if (declared_forms && *declared_forms != parsed_forms)
    at.fail(format("truncated file: header declares %zu forms, found %zu",
                   *declared_forms, parsed_forms));
  try {
    mm->validate();
  } catch (const ModelError& e) {
    throw ModelError(at.source + ": model failed validation: " + e.what());
  }
  return std::move(*mm);
}

MachineModel load_machine_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ModelError("cannot open machine file " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return load_machine_string(ss.str(), path);
}

}  // namespace incore::uarch
