#include "uarch/builder.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace incore::uarch::detail {

std::string port_group(const MachineModel& mm,
                       std::initializer_list<std::string_view> ports) {
  std::string out;
  for (std::string_view p : ports) {
    if (mm.port_index(p) < 0)
      throw support::ModelError("port_group: unknown port '" + std::string(p) +
                                "' in model " + mm.name());
    if (!out.empty()) out += '|';
    out += p;
  }
  return out;
}

std::string port_group_matching(
    const MachineModel& mm, std::initializer_list<std::string_view> prefixes) {
  std::string out;
  for (std::string_view prefix : prefixes) {
    bool matched = false;
    for (const std::string& p : mm.ports()) {
      if (!support::starts_with(p, prefix)) continue;
      if (!out.empty()) out += '|';
      out += p;
      matched = true;
    }
    if (!matched)
      throw support::ModelError("port_group_matching: no port starts with '" +
                                std::string(prefix) + "' in model " +
                                mm.name());
  }
  return out;
}

}  // namespace incore::uarch::detail
