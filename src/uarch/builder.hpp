#pragma once
// Shared registration helpers for the hand-written machine builders.
//
// Every builder used to declare its own pair of F/S lambdas around
// MachineModel::add plus a set of '|'-joined port-group string literals;
// the four copies drifted in small ways (const char* vs std::string
// overloads).  FormReg is the single shim, and the port_group helpers
// derive the group strings from the model's declared port list instead of
// repeating them by hand.

#include <initializer_list>
#include <string>
#include <string_view>

#include "uarch/model.hpp"

namespace incore::uarch::detail {

/// Form-registration shim: `F(form, inverse_throughput, latency, ports)`
/// accepts literals and support::format() temporaries alike.
class FormReg {
 public:
  explicit FormReg(MachineModel& mm) : mm_(&mm) {}
  void operator()(std::string_view form, double inverse_throughput,
                  double latency, std::string_view ports_spec) const {
    mm_->add(form, inverse_throughput, latency, ports_spec);
  }

 private:
  MachineModel* mm_;
};

/// '|'-joins explicit port names: port_group({"P0", "P1", "P5"}).
/// Validates each name against the model's declared ports (throws
/// support::ModelError), so a typo fails at build time instead of
/// resolving to an empty mask.
[[nodiscard]] std::string port_group(
    const MachineModel& mm, std::initializer_list<std::string_view> ports);

/// All declared ports whose name starts with one of `prefixes`, in
/// declaration order: port_group_matching(mm, {"I", "M"}) on Neoverse V2
/// yields "I0|I1|I2|I3|M0|M1".  Throws support::ModelError when a prefix
/// matches nothing.
[[nodiscard]] std::string port_group_matching(
    const MachineModel& mm, std::initializer_list<std::string_view> prefixes);

}  // namespace incore::uarch::detail
