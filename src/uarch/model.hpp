#pragma once
// Microarchitecture (port) models.
//
// A MachineModel is the paper's "in-core model": the set of issue ports, the
// out-of-order resource sizes, and a database mapping instruction *forms*
// (mnemonic + operand signature, e.g. "vfmadd231pd v512,v512,v512") to their
// performance descriptor: port occupation in cycles, reciprocal throughput
// and latency.  Port occupation follows the OSACA convention: each PortUse
// names a set of alternative ports and the number of cycles of occupancy the
// instruction contributes to (a balanced assignment over) that set.
// Non-pipelined units (dividers) are expressed as multi-cycle occupancy.

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "asmir/ir.hpp"

namespace incore::uarch {

/// The paper-trio *family tag*.  This is no longer how the stack names
/// machines (that is the MachineRegistry / MachineRef layer in
/// registry.hpp); it survives as the key into trio-specific tables that
/// live outside the MachineModel: ECM hierarchy parameters, chip power
/// coefficients, testbed silicon configs and compiler-personality codegen.
/// Every model — built-in, what-if clone or .mdf-loaded — carries one
/// (`MachineModel::micro()`, the `family` header of the file format), so
/// user models fall back to the tables of the trio member they derive from.
enum class Micro : std::uint8_t { NeoverseV2, GoldenCove, Zen4 };

[[nodiscard]] const char* to_string(Micro m);
/// Marketing name of the CPU built around the microarchitecture, as used in
/// the paper ("GCS", "SPR", "Genoa").
[[nodiscard]] const char* cpu_short_name(Micro m);

/// Bitmask over a machine's ports (max 32 ports; the largest model, Neoverse
/// V2, has 17).
using PortMask = std::uint32_t;

struct PortUse {
  PortMask mask = 0;   // alternative ports
  double cycles = 1.0; // occupancy contributed to the set
};

/// Policy for `MachineModel::add` when the form key is already registered.
/// The historical behaviour (silently keeping the first registration) hid
/// typos in hand-written models; the default now rejects re-registration.
enum class OnDuplicate : std::uint8_t {
  Reject,     // throw support::ModelError (default)
  Warn,       // keep the first entry, record the key in duplicate_forms()
  Overwrite,  // last write wins (what-if model editing)
};

struct InstrPerf {
  /// Reciprocal (inverse) throughput in cycles per instruction, steady state.
  double inverse_throughput = 1.0;
  /// Result latency in cycles (worst source -> destination).
  double latency = 1.0;
  std::vector<PortUse> port_uses;
  /// Number of micro-ops for front-end/ROB accounting (defaults to the
  /// number of port uses).
  double uops = 0.0;
  /// Late accumulator forwarding: effective latency of the destination-
  /// accumulator input of FMA-class instructions (0 = no late forwarding).
  /// Neoverse V2 forwards fused accumulates in 2 cycles.
  double accumulator_latency = 0.0;

  [[nodiscard]] double total_uops() const;
};

/// Outcome of resolving one IR instruction against the model, after folded
/// loads/stores are decomposed into synthetic "_load.mN" / "_store.mN" ops.
struct Resolved {
  double accumulator_latency = 0.0;  // see InstrPerf::accumulator_latency
  std::vector<PortUse> port_uses;   // combined occupancy
  double inverse_throughput = 1.0;  // max over components
  double latency = 1.0;             // total source->dest latency
  double load_latency = 0.0;        // portion contributed by an L1 load
  /// Latency of the value-producing (compute) component alone: for a folded
  /// load+compute instruction this excludes the load, because an OoO core
  /// issues the load micro-op ahead of the recurrence -- register chains
  /// through the destination see only this part.
  double chain_latency = 1.0;
  double uops = 1.0;
  bool has_load = false;
  bool has_store = false;
  bool is_gather = false;
  /// The form missed the table and resolved through the bare-mnemonic
  /// fallback entry: latency/throughput are a guess at mnemonic granularity.
  bool used_fallback = false;
  /// The form resolved via folded-access decomposition into synthetic
  /// "_load.mN"/"_store.mN" micro-ops plus the register-equivalent compute
  /// form (the normal path for folded memory operands).
  bool decomposed = false;
};

/// Per-core cache-hierarchy geometry (the MDF `cache` directive).  Shared
/// by the trace simulator (memsim::CacheHierarchy::for_model) and the
/// static traffic engine (src/traffic/), so what-if edits to an .mdf file
/// flow into both sides of the traffic cross-validation.  `l3_bytes` is the
/// per-core L3 share, as in the paper's Table I.
struct CacheParams {
  long long l1_bytes = 32 * 1024;
  int l1_ways = 8;
  long long l2_bytes = 1024 * 1024;
  int l2_ways = 8;
  long long l3_bytes = 2 * 1024 * 1024;
  int l3_ways = 16;
  int line_bytes = 64;
  /// Distinct access streams the hardware prefetchers can track
  /// concurrently (drives the VT007 traffic lint).
  int prefetch_streams = 16;
};

/// Memory-hierarchy transfer parameters for the ECM composition (the MDF
/// `hierarchy` directive), in cycles per 64 B cache line per adjacent-level
/// transfer with one core active.  The built-in defaults are the paper-trio
/// values; `cy_per_cl_l3_mem` is derived from base frequency over saturated
/// socket bandwidth (the memsim/power derivation is pinned by a drift test
/// in ecm_test so these literals cannot silently diverge from it).
struct HierarchyParams {
  double cy_per_cl_l1_l2 = 1.0;
  double cy_per_cl_l2_l3 = 2.0;
  double cy_per_cl_l3_mem = 5.0;
  /// Socket-level memory-bandwidth cap in cache lines per cycle, for the
  /// multicore saturation law (the reciprocal of cy_per_cl_l3_mem for the
  /// built-in machines; what-if edits may decouple the two).
  double socket_cl_per_cy = 0.2;
  /// Cores on the socket: the upper end of the N-core prediction axis.
  int socket_cores = 1;
  /// Write-allocate lines are charged on every level unless the machine
  /// evades them (Grace's automatic cache-line claim).
  bool write_allocate_evaded = false;
};

/// Front-end and out-of-order resource description (used by the MCA-style
/// comparator and the execution testbed, not by the static analyzer).
struct CoreResources {
  int decode_width = 4;     // instructions fetched+decoded per cycle
  int rename_width = 6;     // micro-ops renamed/allocated per cycle
  int retire_width = 6;     // micro-ops retired per cycle
  int rob_size = 256;
  int scheduler_size = 96;  // unified reservation-station entries
  int load_queue = 64;
  int store_queue = 48;
};

class MachineModel {
 public:
  MachineModel(std::string name, Micro micro, asmir::Isa isa,
               std::vector<std::string> ports);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Micro micro() const { return micro_; }
  [[nodiscard]] asmir::Isa isa() const { return isa_; }
  [[nodiscard]] const std::vector<std::string>& ports() const { return ports_; }
  [[nodiscard]] std::size_t port_count() const { return ports_.size(); }

  [[nodiscard]] int port_index(std::string_view port_name) const;
  /// Mask from a '|'-separated list, e.g. "V0|V1|V2|V3".
  [[nodiscard]] PortMask mask(std::string_view spec) const;

  CoreResources& resources() { return res_; }
  [[nodiscard]] const CoreResources& resources() const { return res_; }

  int simd_width_bits = 128;
  double l1_load_latency = 4.0;
  /// Cache geometry; defaults to default_cache_params(micro()) at
  /// construction, overridable by builders and the MDF `cache` directive.
  CacheParams cache;
  /// ECM memory-hierarchy parameters; defaults to
  /// default_hierarchy_params(micro()) at construction, overridable by the
  /// MDF `hierarchy` directive (what-if memory systems).
  HierarchyParams hierarchy;
  /// Issue-width caps independent of AGU port counts.
  int loads_per_cycle = 2;
  int stores_per_cycle = 1;

  /// Registers an instruction form.  `ports_spec` is a ';'-separated list of
  /// occupancy terms "CYCLESxPORT|PORT|..." (CYCLES may be fractional and
  /// defaults to 1), e.g. "1xP0|P5" or "16xP0".  Throws ModelError for
  /// unknown ports, and (under the default OnDuplicate::Reject policy) for
  /// re-registration of an existing form key.
  void add(std::string_view form, double inverse_throughput, double latency,
           std::string_view ports_spec, double uops = 0.0);

  /// Re-registration policy for add(); see OnDuplicate.
  void set_on_duplicate(OnDuplicate policy) { on_duplicate_ = policy; }
  [[nodiscard]] OnDuplicate on_duplicate() const { return on_duplicate_; }
  /// Form keys whose re-registration was suppressed under OnDuplicate::Warn,
  /// in registration order.  Consumed by the model verifier (diagnostic
  /// VM007).
  [[nodiscard]] const std::vector<std::string>& duplicate_forms() const {
    return duplicate_forms_;
  }

  /// Raw insertion bypassing the ports-spec parser: overwrites or inserts
  /// the descriptor as given, without any consistency checking.  Intended
  /// for what-if model editing and for verifier tests that need to build
  /// deliberately corrupted fixtures.
  void set_perf(std::string_view form, InstrPerf perf);

  /// Sets the late-forwarding accumulator latency of an existing form.
  void set_accumulator_latency(std::string_view form, double latency);

  /// Overwrites or inserts a form (used by what-if model editing).
  void set(std::string_view form, double inverse_throughput, double latency,
           std::string_view ports_spec, double uops = 0.0);

  /// Exact-form lookup; nullptr when absent.
  [[nodiscard]] const InstrPerf* find(const std::string& form) const;

  /// Full resolution incl. folded-access decomposition and mnemonic
  /// fallback.  Throws support::UnknownInstruction when nothing applies.
  [[nodiscard]] Resolved resolve(const asmir::Instruction& ins) const;

  /// Bare-mnemonic lookup used as the last resolution resort (exposed so the
  /// verifier can classify resolution paths without re-running resolve()).
  [[nodiscard]] const InstrPerf* find_fallback(
      const std::string& mnemonic) const {
    return find_mnemonic_fallback(mnemonic);
  }

  [[nodiscard]] std::size_t table_size() const { return table_.size(); }

  /// All registered form keys (unordered).  For introspection and tests.
  [[nodiscard]] std::vector<std::string> forms() const;

  /// Model introspection used by the Table II bench.
  [[nodiscard]] int count_ports_matching(std::string_view prefix) const;

  /// Validates internal consistency (every referenced port exists; declared
  /// reciprocal throughput is achievable given the port occupancies).
  /// Throws support::ModelError on violations.
  void validate() const;

 private:
  [[nodiscard]] const InstrPerf* find_mnemonic_fallback(
      const std::string& mnemonic) const;

  std::string name_;
  Micro micro_;
  asmir::Isa isa_;
  std::vector<std::string> ports_;
  CoreResources res_;
  std::unordered_map<std::string, InstrPerf> table_;
  OnDuplicate on_duplicate_ = OnDuplicate::Reject;
  std::vector<std::string> duplicate_forms_;
};

/// Documented cache geometry of a paper-trio family (paper Table I), used
/// as the construction-time default for every model of that family.
[[nodiscard]] CacheParams default_cache_params(Micro m);

/// Documented ECM hierarchy parameters of a paper-trio family, used as the
/// construction-time default for every model of that family.
[[nodiscard]] HierarchyParams default_hierarchy_params(Micro m);

/// The built-in model of a paper-trio member.  Models are constructed once
/// (through the MachineRegistry, see registry.hpp) and immutable
/// afterwards.  Throws support::ModelError for out-of-range values.
[[nodiscard]] const MachineModel& machine(Micro m);

/// All paper-trio microarchitectures, in paper order (GCS, SPR, Genoa).
[[nodiscard]] const std::vector<Micro>& all_micros();

/// Parses a user-facing name of a *trio* machine (case-insensitive),
/// consulting the registry's alias table: "gcs"/"grace"/"v2"/"neoverse-v2",
/// "spr"/"goldencove"/"golden-cove"/"sapphire-rapids", "genoa"/"zen4".
/// Returns false (leaving `out` untouched) for anything else — including
/// registered non-trio machines such as "icelake"; callers that should
/// accept those (or .mdf paths) want uarch::resolve_machine instead.
[[nodiscard]] bool micro_from_name(std::string_view name, Micro& out);

/// One-line help text listing the accepted machine names, generated from
/// the registry.
[[nodiscard]] const char* machine_names_help();

/// The previous-generation Intel server core (Sunny Cove), modeled for the
/// paper's generational ADD-latency comparison.  Not a testbed-trio member;
/// registered in the MachineRegistry under the name "icelake".
[[nodiscard]] const MachineModel& ice_lake_sp();

namespace detail {
MachineModel build_neoverse_v2();
MachineModel build_golden_cove();
MachineModel build_zen4();
MachineModel build_ice_lake_sp();
}  // namespace detail

}  // namespace incore::uarch
