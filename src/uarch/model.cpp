#include "uarch/model.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <unordered_set>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace incore::uarch {

using support::ModelError;
using support::UnknownInstruction;
using support::format;
using support::split;
using support::trim;

const char* to_string(Micro m) {
  switch (m) {
    case Micro::NeoverseV2: return "Neoverse V2";
    case Micro::GoldenCove: return "Golden Cove";
    case Micro::Zen4: return "Zen 4";
  }
  return "?";
}

const char* cpu_short_name(Micro m) {
  switch (m) {
    case Micro::NeoverseV2: return "GCS";
    case Micro::GoldenCove: return "SPR";
    case Micro::Zen4: return "Genoa";
  }
  return "?";
}

double InstrPerf::total_uops() const {
  if (uops > 0.0) return uops;
  double n = 0.0;
  for (const PortUse& pu : port_uses) n += pu.cycles;
  return std::max(n, 1.0);
}

MachineModel::MachineModel(std::string name, Micro micro, asmir::Isa isa,
                           std::vector<std::string> ports)
    : name_(std::move(name)), micro_(micro), isa_(isa), ports_(std::move(ports)) {
  if (ports_.size() > 32)
    throw ModelError("too many ports in model " + name_);
  cache = default_cache_params(micro_);
  hierarchy = default_hierarchy_params(micro_);
}

CacheParams default_cache_params(Micro m) {
  // Paper Table I geometry; l3_bytes is the per-core share of the socket's
  // L3 (114 MiB/72 cores on GCS, 105 MiB/52 on SPR, 12x96 MiB/96 on Genoa).
  CacheParams c;
  switch (m) {
    case Micro::NeoverseV2:
      c.l1_bytes = 64 * 1024;
      c.l1_ways = 4;
      c.l2_bytes = 1024 * 1024;
      c.l2_ways = 8;
      c.l3_bytes = 114ll * 1024 * 1024 / 72;
      c.l3_ways = 12;
      c.prefetch_streams = 8;
      break;
    case Micro::GoldenCove:
      c.l1_bytes = 48 * 1024;
      c.l1_ways = 12;
      c.l2_bytes = 2 * 1024 * 1024;
      c.l2_ways = 16;
      c.l3_bytes = 105ll * 1024 * 1024 / 52;
      c.l3_ways = 15;
      c.prefetch_streams = 16;
      break;
    case Micro::Zen4:
      c.l1_bytes = 32 * 1024;
      c.l1_ways = 8;
      c.l2_bytes = 1024 * 1024;
      c.l2_ways = 8;
      c.l3_bytes = 1152ll * 1024 * 1024 / 96;
      c.l3_ways = 16;
      c.prefetch_streams = 24;
      break;
  }
  return c;
}

HierarchyParams default_hierarchy_params(Micro m) {
  // Per-level transfer costs follow the ECM convention (Stengel et al.,
  // ICS'15).  L1<->L2 and L2<->L3 come from documented interface widths;
  // cy_per_cl_l3_mem is 64 B times base frequency over the saturated socket
  // bandwidth, evaluated once from the memsim preset and the power model
  // (the exact doubles below; ecm_test pins them against that derivation so
  // a preset change here or there fails loudly instead of drifting).
  HierarchyParams h;
  switch (m) {
    case Micro::NeoverseV2:
      h.cy_per_cl_l1_l2 = 1.0;  // 64 B/cy L2 interface
      h.cy_per_cl_l2_l3 = 2.0;  // mesh
      h.cy_per_cl_l3_mem = 0.46618315399183613;  // 64 B * 3.4 GHz / 466.8 GB/s
      h.socket_cl_per_cy = 2.145079656862745;
      h.socket_cores = 72;
      h.write_allocate_evaded = true;  // automatic cache-line claim
      break;
    case Micro::GoldenCove:
      h.cy_per_cl_l1_l2 = 1.0;
      h.cy_per_cl_l2_l3 = 2.5;  // mesh hop
      h.cy_per_cl_l3_mem = 0.46905537459283392;  // 64 B * 2.0 GHz / 272.9 GB/s
      h.socket_cl_per_cy = 2.1319444444444442;
      h.socket_cores = 52;
      // SpecI2M only helps near interface saturation; single-core ECM
      // transfers keep the write-allocate.
      h.write_allocate_evaded = false;
      break;
    case Micro::Zen4:
      h.cy_per_cl_l1_l2 = 1.0;
      h.cy_per_cl_l2_l3 = 1.5;  // per-CCD L3
      h.cy_per_cl_l3_mem = 0.45334620612684062;  // 64 B * 2.55 GHz / 360.0 GB/s
      h.socket_cl_per_cy = 2.2058197167755993;
      h.socket_cores = 96;
      h.write_allocate_evaded = false;
      break;
  }
  return h;
}

int MachineModel::port_index(std::string_view port_name) const {
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    if (ports_[i] == port_name) return static_cast<int>(i);
  }
  return -1;
}

PortMask MachineModel::mask(std::string_view spec) const {
  PortMask m = 0;
  for (std::string_view p : split(spec, '|')) {
    p = trim(p);
    int idx = port_index(p);
    if (idx < 0)
      throw ModelError("unknown port '" + std::string(p) + "' in model " + name_);
    m |= (PortMask{1} << idx);
  }
  return m;
}

void MachineModel::add(std::string_view form, double inverse_throughput,
                       double latency, std::string_view ports_spec,
                       double uops) {
  InstrPerf perf;
  perf.inverse_throughput = inverse_throughput;
  perf.latency = latency;
  perf.uops = uops;
  for (std::string_view term : split(ports_spec, ';')) {
    term = trim(term);
    if (term.empty()) continue;
    double cycles = 1.0;
    std::string_view port_list = term;
    if (auto x = term.find('x'); x != std::string_view::npos) {
      // Only treat as multiplier if the prefix parses as a number.
      std::string head(term.substr(0, x));
      char* end = nullptr;
      double v = std::strtod(head.c_str(), &end);
      if (end == head.c_str() + head.size() && !head.empty()) {
        cycles = v;
        port_list = term.substr(x + 1);
      }
    }
    perf.port_uses.push_back(PortUse{mask(port_list), cycles});
  }
  std::string key(form);
  if (table_.contains(key)) {
    switch (on_duplicate_) {
      case OnDuplicate::Reject:
        throw ModelError("duplicate form '" + key + "' in model " + name_);
      case OnDuplicate::Warn:
        duplicate_forms_.push_back(key);
        return;  // first registration wins, as before
      case OnDuplicate::Overwrite:
        break;
    }
  }
  table_.insert_or_assign(std::move(key), std::move(perf));
}

void MachineModel::set_perf(std::string_view form, InstrPerf perf) {
  table_.insert_or_assign(std::string(form), std::move(perf));
}

void MachineModel::set(std::string_view form, double inverse_throughput,
                       double latency, std::string_view ports_spec,
                       double uops) {
  table_.erase(std::string(form));
  add(form, inverse_throughput, latency, ports_spec, uops);
}

void MachineModel::set_accumulator_latency(std::string_view form,
                                           double latency) {
  auto it = table_.find(std::string(form));
  if (it == table_.end())
    throw ModelError("set_accumulator_latency: unknown form '" +
                     std::string(form) + "' in " + name_);
  it->second.accumulator_latency = latency;
}

const InstrPerf* MachineModel::find(const std::string& form) const {
  auto it = table_.find(form);
  return it == table_.end() ? nullptr : &it->second;
}

const InstrPerf* MachineModel::find_mnemonic_fallback(
    const std::string& mnemonic) const {
  return find(mnemonic);
}

namespace {

/// Builds the register-only compute form of an instruction with a folded
/// memory access: every "mNNN" token is replaced by a register token
/// matching the instruction's register operands (a folded scalar-SD load
/// still computes in a 128-bit register).
std::string reg_equivalent_form(const asmir::Instruction& ins) {
  int vector_width = 0;
  for (const auto& op : ins.ops) {
    if (op.is_reg() && op.reg().cls == asmir::RegClass::Vector) {
      vector_width = std::max(vector_width, op.reg().width_bits);
    }
  }
  std::string out = ins.mnemonic;
  if (!ins.ops.empty()) out += ' ';
  for (std::size_t i = 0; i < ins.ops.size(); ++i) {
    if (i) out += ',';
    const auto& op = ins.ops[i];
    if (op.is_mem()) {
      int w = op.mem().width_bits;
      if (vector_width > 0) {
        out += support::format("v%d", vector_width);
      } else {
        out += w <= 32 ? "r32" : "r64";
      }
    } else {
      out += asmir::form_token(op);
    }
  }
  return out;
}

/// Mnemonic families whose only work is the memory transfer itself; they
/// may decompose without a compute component.  Anything else with a folded
/// access must resolve its compute form.
bool is_pure_transfer(const std::string& m) {
  static const std::unordered_set<std::string> kTransfer = {
      "mov",      "movzbl",   "movslq",  "movsbl",    "movzwl",
      "vmovupd",  "vmovapd",  "vmovups", "vmovaps",   "vmovdqu",
      "vmovdqa",  "vmovdqu64","vmovdqa64", "movupd",  "movapd",
      "movsd",    "vmovsd",   "movss",   "vmovss",    "vmovntpd",
      "movntpd",  "movnti",   "vbroadcastsd", "vmovddup",
      "ldr", "ldur", "ldp", "ldnp", "ldrsw", "ld1", "ld1r", "ld1d",
      "ld1w", "ld1rd", "ldnt1d", "str", "stur", "stp", "stnp", "st1",
      "st1d", "st1w", "stnt1d", "push", "pop", "prfm"};
  return kTransfer.contains(m);
}

void append_uses(Resolved& r, const InstrPerf& perf) {
  for (const PortUse& pu : perf.port_uses) r.port_uses.push_back(pu);
  r.inverse_throughput = std::max(r.inverse_throughput, perf.inverse_throughput);
  r.uops += perf.total_uops();
}

}  // namespace

Resolved MachineModel::resolve(const asmir::Instruction& ins) const {
  Resolved r;
  r.uops = 0.0;
  r.inverse_throughput = 0.0;
  const std::string form = ins.form();

  if (const InstrPerf* perf = find(form)) {
    append_uses(r, *perf);
    r.latency = perf->latency;
    r.chain_latency = perf->latency;
    r.accumulator_latency = perf->accumulator_latency;
    r.has_load = ins.is_load;
    r.has_store = ins.is_store;
    const asmir::MemOperand* mem = ins.mem_operand();
    r.is_gather = mem && mem->is_gather;
    if (ins.is_load) r.load_latency = perf->latency;
    return r;
  }

  // Folded-access decomposition: split memory micro-ops from the compute op.
  const asmir::MemOperand* mem = ins.mem_operand();
  if (mem != nullptr) {
    bool load = false;
    bool store = false;
    for (const auto& op : ins.ops) {
      if (op.is_mem()) {
        load |= op.read;
        store |= op.write;
      }
    }
    const int w = mem->width_bits;
    const InstrPerf* load_perf =
        load ? find(format(mem->is_gather ? "_gather.m%d" : "_load.m%d", w))
             : nullptr;
    const InstrPerf* store_perf = store ? find(format("_store.m%d", w)) : nullptr;
    const InstrPerf* compute = find(reg_equivalent_form(ins));
    // Pure transfers may decompose without a compute component; a folded
    // arithmetic instruction must resolve its compute form.
    const bool pure_mem = is_pure_transfer(ins.mnemonic);
    bool ok = (!load || load_perf != nullptr) && (!store || store_perf != nullptr) &&
              (pure_mem || compute != nullptr) && (load || store);
    if (ok) {
      double lat = 0.0;
      if (load_perf) {
        append_uses(r, *load_perf);
        r.load_latency = load_perf->latency;
        lat += load_perf->latency;
        r.has_load = true;
      }
      if (compute) {
        append_uses(r, *compute);
        lat += compute->latency;
        r.chain_latency = compute->latency;
        r.accumulator_latency = compute->accumulator_latency;
      } else {
        r.chain_latency = load_perf ? load_perf->latency : 1.0;
      }
      if (store_perf) {
        append_uses(r, *store_perf);
        r.has_store = true;
        // Store latency does not extend the dependency chain to consumers.
      }
      r.latency = std::max(lat, 1.0);
      r.is_gather = mem->is_gather;
      r.decomposed = true;
      return r;
    }
  }

  if (const InstrPerf* perf = find_mnemonic_fallback(ins.mnemonic)) {
    append_uses(r, *perf);
    r.latency = perf->latency;
    r.chain_latency = perf->latency;
    r.has_load = ins.is_load;
    r.has_store = ins.is_store;
    if (ins.is_load) r.load_latency = perf->latency;
    // Only a degradation when the instruction actually has operands: the
    // bare-mnemonic key *is* the exact form of operand-less instructions.
    r.used_fallback = !ins.ops.empty();
    return r;
  }
  throw UnknownInstruction(form + " (machine " + name_ + ")");
}

std::vector<std::string> MachineModel::forms() const {
  std::vector<std::string> out;
  out.reserve(table_.size());
  for (const auto& [form, perf] : table_) out.push_back(form);
  return out;
}

int MachineModel::count_ports_matching(std::string_view prefix) const {
  int n = 0;
  for (const auto& p : ports_) {
    if (support::starts_with(p, prefix)) ++n;
  }
  return n;
}

void MachineModel::validate() const {
  for (const auto& [form, perf] : table_) {
    if (perf.port_uses.empty() && perf.inverse_throughput > 0.0) {
      // Zero-uop forms (eliminated moves, nops) are fine.
      continue;
    }
    for (const PortUse& pu : perf.port_uses) {
      if (pu.mask == 0)
        throw ModelError("form '" + form + "' uses an empty port set in " + name_);
      if (pu.cycles <= 0.0)
        throw ModelError("form '" + form + "' has non-positive occupancy in " +
                         name_);
      if (pu.mask >> ports_.size())
        throw ModelError("form '" + form + "' references ports outside model " +
                         name_);
    }
    // The declared reciprocal throughput must be achievable: for each
    // occupancy term, cycles spread over |ports| alternatives bounds the
    // steady-state rate from below.
    for (const PortUse& pu : perf.port_uses) {
      int width = std::popcount(pu.mask);
      double implied = pu.cycles / static_cast<double>(width);
      if (perf.inverse_throughput + 1e-9 < implied)
        throw ModelError(format(
            "form '%s' in %s declares inverse throughput %.3f below the "
            "port-implied bound %.3f",
            form.c_str(), name_.c_str(), perf.inverse_throughput, implied));
    }
  }
}

}  // namespace incore::uarch
