#include "uarch/model.hpp"

#include "support/strings.hpp"

namespace incore::uarch {

const MachineModel& machine(Micro m) {
  static const MachineModel v2 = [] {
    MachineModel mm = detail::build_neoverse_v2();
    mm.validate();
    return mm;
  }();
  static const MachineModel gc = [] {
    MachineModel mm = detail::build_golden_cove();
    mm.validate();
    return mm;
  }();
  static const MachineModel z4 = [] {
    MachineModel mm = detail::build_zen4();
    mm.validate();
    return mm;
  }();
  switch (m) {
    case Micro::NeoverseV2: return v2;
    case Micro::GoldenCove: return gc;
    case Micro::Zen4: return z4;
  }
  return v2;
}

const std::vector<Micro>& all_micros() {
  static const std::vector<Micro> micros = {
      Micro::NeoverseV2, Micro::GoldenCove, Micro::Zen4};
  return micros;
}

bool micro_from_name(std::string_view name, Micro& out) {
  const std::string n = support::to_lower(name);
  if (n == "gcs" || n == "grace" || n == "v2" || n == "neoverse-v2") {
    out = Micro::NeoverseV2;
  } else if (n == "spr" || n == "goldencove" || n == "golden-cove" ||
             n == "sapphire-rapids") {
    out = Micro::GoldenCove;
  } else if (n == "genoa" || n == "zen4") {
    out = Micro::Zen4;
  } else {
    return false;
  }
  return true;
}

const char* machine_names_help() {
  return "gcs (grace, v2), spr (goldencove), genoa (zen4)";
}

}  // namespace incore::uarch
