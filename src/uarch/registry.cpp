#include "uarch/model.hpp"

namespace incore::uarch {

const MachineModel& machine(Micro m) {
  static const MachineModel v2 = [] {
    MachineModel mm = detail::build_neoverse_v2();
    mm.validate();
    return mm;
  }();
  static const MachineModel gc = [] {
    MachineModel mm = detail::build_golden_cove();
    mm.validate();
    return mm;
  }();
  static const MachineModel z4 = [] {
    MachineModel mm = detail::build_zen4();
    mm.validate();
    return mm;
  }();
  switch (m) {
    case Micro::NeoverseV2: return v2;
    case Micro::GoldenCove: return gc;
    case Micro::Zen4: return z4;
  }
  return v2;
}

const std::vector<Micro>& all_micros() {
  static const std::vector<Micro> micros = {
      Micro::NeoverseV2, Micro::GoldenCove, Micro::Zen4};
  return micros;
}

}  // namespace incore::uarch
