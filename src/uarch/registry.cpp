#include "uarch/registry.hpp"

#include <algorithm>
#include <filesystem>
#include <mutex>

#include "support/error.hpp"
#include "support/strings.hpp"
#include "uarch/mdf.hpp"

namespace incore::uarch {

using support::ModelError;

namespace {

/// All registry state is guarded by one mutex: resolution happens at CLI /
/// bench startup, never on the sweep hot path.
std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

/// A spelling "looks like" a file when it can only be a path: it has a
/// directory component or the .mdf extension.  Everything else is tried as
/// a name first so that registered models always win over stray files.
bool looks_like_path(std::string_view s) {
  return s.find('/') != std::string_view::npos ||
         s.find('\\') != std::string_view::npos ||
         support::ends_with(support::to_lower(s), ".mdf");
}

}  // namespace

// ------------------------------------------------------------ Micro bridge

const MachineModel& machine(Micro m) {
  switch (m) {
    case Micro::NeoverseV2: return *machine_ref(Micro::NeoverseV2).model;
    case Micro::GoldenCove: return *machine_ref(Micro::GoldenCove).model;
    case Micro::Zen4: return *machine_ref(Micro::Zen4).model;
  }
  // An out-of-range value (a cast from untrusted input) used to silently
  // return the Neoverse V2 model; fail loudly instead.
  throw ModelError(support::format("machine(): invalid Micro value %d",
                                   static_cast<int>(m)));
}

const std::vector<Micro>& all_micros() {
  static const std::vector<Micro> micros = {
      Micro::NeoverseV2, Micro::GoldenCove, Micro::Zen4};
  return micros;
}

bool micro_from_name(std::string_view name, Micro& out) {
  if (looks_like_path(name)) return false;
  const std::optional<Micro> tag =
      MachineRegistry::instance().trio_tag(support::to_lower(name));
  if (!tag) return false;
  out = *tag;
  return true;
}

const char* machine_names_help() {
  static const std::string help = MachineRegistry::instance().names_help();
  return help.c_str();
}

// ------------------------------------------------------------ the registry

MachineRegistry::MachineRegistry() {
  add_builtin("gcs", {"grace", "v2", "neoverse-v2"},
              [] { return detail::build_neoverse_v2(); }, Micro::NeoverseV2);
  add_builtin("spr", {"goldencove", "golden-cove", "sapphire-rapids"},
              [] { return detail::build_golden_cove(); }, Micro::GoldenCove);
  add_builtin("genoa", {"zen4"},
              [] { return detail::build_zen4(); }, Micro::Zen4);
  // The auxiliary generational-comparison model: resolvable like any other
  // machine, but not a trio member (it reuses the Golden Cove family tag
  // for the out-of-model tables).
  add_builtin("icelake", {"ice-lake-sp", "icelake-sp", "icx"},
              [] { return detail::build_ice_lake_sp(); }, std::nullopt);
}

MachineRegistry& MachineRegistry::instance() {
  static MachineRegistry reg;
  return reg;
}

MachineRegistry::Entry* MachineRegistry::find_entry(
    std::string_view lower_name) {
  for (auto& e : entries_) {
    if (e->name == lower_name) return e.get();
    for (const std::string& a : e->aliases) {
      if (a == lower_name) return e.get();
    }
  }
  return nullptr;
}

const MachineRegistry::Entry* MachineRegistry::find_entry(
    std::string_view lower_name) const {
  return const_cast<MachineRegistry*>(this)->find_entry(lower_name);
}

void MachineRegistry::add_builtin(std::string name,
                                  std::vector<std::string> aliases,
                                  std::function<MachineModel()> build,
                                  std::optional<Micro> trio_tag) {
  if (find_entry(name) != nullptr)
    throw ModelError("machine name '" + name + "' is already registered");
  for (const std::string& a : aliases) {
    if (find_entry(a) != nullptr)
      throw ModelError("machine alias '" + a + "' is already registered");
  }
  auto e = std::make_unique<Entry>();
  e->name = std::move(name);
  e->aliases = std::move(aliases);
  e->build = std::move(build);
  e->trio_tag = trio_tag;
  e->is_builtin = true;
  entries_.push_back(std::move(e));
}

const MachineModel& MachineRegistry::materialize(Entry& e) {
  if (!e.model) {
    MachineModel mm = e.build();
    mm.validate();
    e.model = std::make_unique<MachineModel>(std::move(mm));
    e.build = nullptr;
  }
  return *e.model;
}

MachineRef MachineRegistry::add_model(std::string name, MachineModel model) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const std::string lower = support::to_lower(name);
  if (Entry* existing = find_entry(lower)) {
    if (existing->is_builtin)
      throw ModelError("cannot shadow built-in machine '" + lower + "'");
    existing->model = std::make_unique<MachineModel>(std::move(model));
    return MachineRef{existing->name, existing->model.get()};
  }
  auto e = std::make_unique<Entry>();
  e->name = lower;
  e->model = std::make_unique<MachineModel>(std::move(model));
  e->is_builtin = false;
  entries_.push_back(std::move(e));
  Entry& ref = *entries_.back();
  return MachineRef{ref.name, ref.model.get()};
}

bool MachineRegistry::try_resolve(std::string_view name_or_path,
                                  MachineRef& out) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const std::string lower = support::to_lower(name_or_path);
  if (!looks_like_path(name_or_path)) {
    Entry* e = find_entry(lower);
    if (e == nullptr) return false;
    out = MachineRef{e->name, &materialize(*e)};
    return true;
  }
  // A path: loaded once and cached under its exact spelling.
  const std::string path(name_or_path);
  for (auto& e : file_cache_) {
    if (e->name == path) {
      out = MachineRef{e->name, e->model.get()};
      return true;
    }
  }
  if (!std::filesystem::exists(path)) return false;
  auto e = std::make_unique<Entry>();
  e->name = path;
  e->model = std::make_unique<MachineModel>(load_machine_file(path));
  file_cache_.push_back(std::move(e));
  Entry& ref = *file_cache_.back();
  out = MachineRef{ref.name, ref.model.get()};
  return true;
}

MachineRef MachineRegistry::resolve(std::string_view name_or_path) {
  MachineRef out;
  if (!try_resolve(name_or_path, out)) {
    throw ModelError("unknown machine '" + std::string(name_or_path) +
                     "' (known: " + names_help() + ")");
  }
  return out;
}

std::vector<MachineRef> MachineRegistry::builtins() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<MachineRef> out;
  for (auto& e : entries_) {
    if (e->is_builtin) out.push_back(MachineRef{e->name, &materialize(*e)});
  }
  return out;
}

std::vector<MachineRef> MachineRegistry::trio() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<MachineRef> out;
  for (auto& e : entries_) {
    if (e->trio_tag) out.push_back(MachineRef{e->name, &materialize(*e)});
  }
  return out;
}

std::string MachineRegistry::names_help() const {
  std::string out;
  for (const auto& e : entries_) {
    if (!e->is_builtin) continue;
    if (!out.empty()) out += ", ";
    out += e->name;
    if (!e->aliases.empty()) {
      out += " (" + support::join(e->aliases, ", ") + ")";
    }
  }
  out += ", or a .mdf machine-description file path";
  return out;
}

std::optional<Micro> MachineRegistry::trio_tag(std::string_view name) const {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const Entry* e = find_entry(support::to_lower(name));
  return e != nullptr ? e->trio_tag : std::nullopt;
}

// ----------------------------------------------------------- free helpers

MachineRef resolve_machine(std::string_view name_or_path) {
  return MachineRegistry::instance().resolve(name_or_path);
}

bool try_resolve_machine(std::string_view name_or_path, MachineRef& out) {
  return MachineRegistry::instance().try_resolve(name_or_path, out);
}

MachineRef machine_ref(Micro m) {
  return MachineRegistry::instance().resolve(family_name(m));
}

}  // namespace incore::uarch
