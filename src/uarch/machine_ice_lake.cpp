// Machine model: Intel Ice Lake SP (Sunny Cove server core).
//
// Included for the paper's generational observation: "[Intel] managed to
// decrease the ADD latency by half compared to the predecessor Ice Lake
// microarchitecture" -- Sunny Cove executes FP ADD on the FMA pipes with a
// 4-cycle latency, while Golden Cove has dedicated 2-cycle adders.
//
// The port layout is the 10-port Sunny Cove arrangement; only the forms
// needed by the comparison benches and the kernel suite are modeled.
// Ice Lake SP is *not* part of the paper's testbed trio; it is registered
// in the MachineRegistry under the name "icelake" and its CoreResources
// use Sunny Cove sizes.

#include <string>

#include "support/strings.hpp"
#include "uarch/builder.hpp"
#include "uarch/model.hpp"
#include "uarch/registry.hpp"

namespace incore::uarch {
namespace detail {

MachineModel build_ice_lake_sp() {
  // Reuses the Golden Cove micro tag (same ISA family and vendor); the
  // model is distinguished by name.
  MachineModel mm("ice-lake-sp", Micro::GoldenCove, asmir::Isa::X86_64,
                  {"P0", "P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8",
                   "P9"});
  mm.simd_width_bits = 512;
  mm.l1_load_latency = 5.0;
  mm.loads_per_cycle = 2;
  mm.stores_per_cycle = 1;
  CoreResources& r = mm.resources();
  r.decode_width = 5;
  r.rename_width = 5;
  r.retire_width = 8;
  r.rob_size = 352;
  r.scheduler_size = 160;
  r.load_queue = 128;
  r.store_queue = 72;

  const FormReg F(mm);

  const std::string kAlu = port_group(mm, {"P0", "P1", "P5", "P6"});
  for (const char* w : {"r64", "r32"}) {
    for (const char* op : {"add", "sub", "and", "or", "xor"}) {
      F(support::format("%s %s,%s", op, w, w), 0.25, 1, kAlu);
      F(support::format("%s i,%s", op, w), 0.25, 1, kAlu);
    }
    for (const char* op : {"inc", "dec", "neg", "not"}) {
      F(support::format("%s %s", op, w), 0.25, 1, kAlu);
    }
    F(support::format("cmp %s,%s", w, w), 0.25, 1, kAlu);
    F(support::format("cmp i,%s", w), 0.25, 1, kAlu);
    F(support::format("test %s,%s", w, w), 0.25, 1, kAlu);
    F(support::format("mov %s,%s", w, w), 0.25, 1, kAlu);
    F(support::format("mov i,%s", w), 0.25, 1, kAlu);
    F(support::format("imul %s,%s", w, w), 1.0, 3, "P1");
    F(support::format("lea m64,%s", w), 0.5, 1, "P1|P5");
  }
  F("nop", 0.2, 0, "");
  for (const char* b : {"jmp", "je", "jne", "jz", "jnz", "jg", "jge", "jl",
                        "jle", "ja", "jae", "jb", "jbe"}) {
    F(support::format("%s l", b), 0.5, 1, "P6|P0");
  }

  // Loads: 2/cy (P2/P3); stores: one 512-bit store data port (P4) + AGUs.
  const std::string kLd = port_group(mm, {"P2", "P3"});
  F("mov m64,r64", 0.5, 5, kLd);
  F("mov m32,r32", 0.5, 5, kLd);
  for (const char* m : {"vmovupd", "vmovapd"}) {
    F(support::format("%s m512,v512", m), 0.5, 7, kLd);
    F(support::format("%s m256,v256", m), 0.5, 7, kLd);
    F(support::format("%s m128,v128", m), 0.5, 7, kLd);
  }
  F("vmovsd m64,v128", 0.5, 7, kLd);
  F("_load.m32", 0.5, 5, kLd);
  F("_load.m64", 0.5, 5, kLd);
  F("_load.m128", 0.5, 7, kLd);
  F("_load.m256", 0.5, 7, kLd);
  F("_load.m512", 0.5, 7, kLd);
  F("mov r64,m64", 1.0, 1, "P4;P7|P8");
  F("mov r32,m32", 1.0, 1, "P4;P7|P8");
  for (const char* m : {"vmovupd", "vmovapd"}) {
    F(support::format("%s v512,m512", m), 1.0, 1, "P4;P7|P8");
    F(support::format("%s v256,m256", m), 1.0, 1, "P4;P7|P8");
    F(support::format("%s v128,m128", m), 1.0, 1, "P4;P7|P8");
  }
  F("vmovsd v128,m64", 1.0, 1, "P4;P7|P8");
  F("vmovntpd v512,m512", 1.0, 1, "P4;P7|P8");
  F("_store.m32", 1.0, 1, "P4;P7|P8");
  F("_store.m64", 1.0, 1, "P4;P7|P8");
  F("_store.m128", 1.0, 1, "P4;P7|P8");
  F("_store.m256", 1.0, 1, "P4;P7|P8");
  F("_store.m512", 1.0, 1, "P4;P7|P8");

  // FP: everything on the two FMA pipes P0 (fused P0+P1 at 512 bit) and P5.
  // Sunny Cove has no dedicated FP adder: ADD latency 4 (the paper's point).
  for (const char* wreg : {"v512", "v256", "v128"}) {
    for (const char* op : {"vaddpd", "vsubpd", "vmulpd", "vmaxpd", "vminpd"}) {
      F(support::format("%s %s,%s,%s", op, wreg, wreg, wreg), 0.5, 4,
        "P0|P5");
    }
    for (const char* fam : {"vfmadd", "vfmsub", "vfnmadd"}) {
      for (const char* v : {"132", "213", "231"}) {
        F(support::format("%s%spd %s,%s,%s", fam, v, wreg, wreg, wreg), 0.5,
          4, "P0|P5");
      }
    }
    F(support::format("vxorpd %s,%s,%s", wreg, wreg, wreg), 0.5, 1, "P0|P5");
    F(support::format("vmovapd %s,%s", wreg, wreg), 0.5, 1, "P0|P5");
    F(support::format("vmovupd %s,%s", wreg, wreg), 0.5, 1, "P0|P5");
  }
  for (const char* op : {"addsd", "vaddsd", "subsd", "vsubsd", "mulsd",
                         "vmulsd"}) {
    bool three_op = op[0] == 'v';
    F(three_op ? support::format("%s v128,v128,v128", op)
               : support::format("%s v128,v128", op),
      0.5, 4, "P0|P5");
  }
  for (const char* fam : {"vfmadd", "vfmsub", "vfnmadd"}) {
    for (const char* v : {"132", "213", "231"}) {
      F(support::format("%s%ssd v128,v128,v128", fam, v), 0.5, 4, "P0|P5");
    }
  }
  F("vdivpd v512,v512,v512", 16.0, 15, "16xP0");
  F("vdivpd v256,v256,v256", 8.0, 15, "8xP0");
  F("vdivsd v128,v128,v128", 4.0, 14, "4xP0");
  F("divsd v128,v128", 4.0, 14, "4xP0");
  F("vbroadcastsd m64,v512", 0.5, 8, kLd);
  F("vbroadcastsd m64,v256", 0.5, 8, kLd);

  return mm;
}

}  // namespace detail

const MachineModel& ice_lake_sp() {
  // Built, validated and cached by the registry like every other machine.
  return *resolve_machine("icelake").model;
}

}  // namespace incore::uarch
