// Machine model: Intel Ice Lake SP (Sunny Cove server core).
//
// Included for the paper's generational observation: "[Intel] managed to
// decrease the ADD latency by half compared to the predecessor Ice Lake
// microarchitecture" -- Sunny Cove executes FP ADD on the FMA pipes with a
// 4-cycle latency, while Golden Cove has dedicated 2-cycle adders.
//
// The port layout is the 10-port Sunny Cove arrangement; only the forms
// needed by the comparison benches and the kernel suite are modeled.
// Ice Lake SP is *not* part of the paper's testbed trio, so this model is
// exposed through its own accessor rather than the Micro enum; its
// CoreResources use Sunny Cove sizes.

#include "uarch/model.hpp"

#include <string>

#include "support/strings.hpp"

namespace incore::uarch {
namespace {

MachineModel build_ice_lake_sp() {
  // Reuses the Golden Cove micro tag (same ISA family and vendor); the
  // model is distinguished by name.
  MachineModel mm("ice-lake-sp", Micro::GoldenCove, asmir::Isa::X86_64,
                  {"P0", "P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8",
                   "P9"});
  mm.simd_width_bits = 512;
  mm.l1_load_latency = 5.0;
  mm.loads_per_cycle = 2;
  mm.stores_per_cycle = 1;
  CoreResources& r = mm.resources();
  r.decode_width = 5;
  r.rename_width = 5;
  r.retire_width = 8;
  r.rob_size = 352;
  r.scheduler_size = 160;
  r.load_queue = 128;
  r.store_queue = 72;

  auto F = [&mm](const char* form, double tp, double lat, const char* ports) {
    mm.add(form, tp, lat, ports);
  };
  auto S = [&mm](const std::string& form, double tp, double lat,
                 const char* ports) { mm.add(form, tp, lat, ports); };

  const char* kAlu = "P0|P1|P5|P6";
  for (const char* w : {"r64", "r32"}) {
    for (const char* op : {"add", "sub", "and", "or", "xor"}) {
      S(support::format("%s %s,%s", op, w, w), 0.25, 1, kAlu);
      S(support::format("%s i,%s", op, w), 0.25, 1, kAlu);
    }
    for (const char* op : {"inc", "dec", "neg", "not"}) {
      S(support::format("%s %s", op, w), 0.25, 1, kAlu);
    }
    S(support::format("cmp %s,%s", w, w), 0.25, 1, kAlu);
    S(support::format("cmp i,%s", w), 0.25, 1, kAlu);
    S(support::format("test %s,%s", w, w), 0.25, 1, kAlu);
    S(support::format("mov %s,%s", w, w), 0.25, 1, kAlu);
    S(support::format("mov i,%s", w), 0.25, 1, kAlu);
    S(support::format("imul %s,%s", w, w), 1.0, 3, "P1");
    S(support::format("lea m64,%s", w), 0.5, 1, "P1|P5");
  }
  F("nop", 0.2, 0, "");
  for (const char* b : {"jmp", "je", "jne", "jz", "jnz", "jg", "jge", "jl",
                        "jle", "ja", "jae", "jb", "jbe"}) {
    S(support::format("%s l", b), 0.5, 1, "P6|P0");
  }

  // Loads: 2/cy (P2/P3); stores: one 512-bit store data port (P4) + AGUs.
  const char* kLd = "P2|P3";
  F("mov m64,r64", 0.5, 5, kLd);
  F("mov m32,r32", 0.5, 5, kLd);
  for (const char* m : {"vmovupd", "vmovapd"}) {
    S(support::format("%s m512,v512", m), 0.5, 7, kLd);
    S(support::format("%s m256,v256", m), 0.5, 7, kLd);
    S(support::format("%s m128,v128", m), 0.5, 7, kLd);
  }
  F("vmovsd m64,v128", 0.5, 7, kLd);
  F("_load.m32", 0.5, 5, kLd);
  F("_load.m64", 0.5, 5, kLd);
  F("_load.m128", 0.5, 7, kLd);
  F("_load.m256", 0.5, 7, kLd);
  F("_load.m512", 0.5, 7, kLd);
  F("mov r64,m64", 1.0, 1, "P4;P7|P8");
  F("mov r32,m32", 1.0, 1, "P4;P7|P8");
  for (const char* m : {"vmovupd", "vmovapd"}) {
    S(support::format("%s v512,m512", m), 1.0, 1, "P4;P7|P8");
    S(support::format("%s v256,m256", m), 1.0, 1, "P4;P7|P8");
    S(support::format("%s v128,m128", m), 1.0, 1, "P4;P7|P8");
  }
  F("vmovsd v128,m64", 1.0, 1, "P4;P7|P8");
  F("vmovntpd v512,m512", 1.0, 1, "P4;P7|P8");
  F("_store.m32", 1.0, 1, "P4;P7|P8");
  F("_store.m64", 1.0, 1, "P4;P7|P8");
  F("_store.m128", 1.0, 1, "P4;P7|P8");
  F("_store.m256", 1.0, 1, "P4;P7|P8");
  F("_store.m512", 1.0, 1, "P4;P7|P8");

  // FP: everything on the two FMA pipes P0 (fused P0+P1 at 512 bit) and P5.
  // Sunny Cove has no dedicated FP adder: ADD latency 4 (the paper's point).
  for (const char* wreg : {"v512", "v256", "v128"}) {
    for (const char* op : {"vaddpd", "vsubpd", "vmulpd", "vmaxpd", "vminpd"}) {
      S(support::format("%s %s,%s,%s", op, wreg, wreg, wreg), 0.5, 4,
        "P0|P5");
    }
    for (const char* fam : {"vfmadd", "vfmsub", "vfnmadd"}) {
      for (const char* v : {"132", "213", "231"}) {
        S(support::format("%s%spd %s,%s,%s", fam, v, wreg, wreg, wreg), 0.5,
          4, "P0|P5");
      }
    }
    S(support::format("vxorpd %s,%s,%s", wreg, wreg, wreg), 0.5, 1, "P0|P5");
    S(support::format("vmovapd %s,%s", wreg, wreg), 0.5, 1, "P0|P5");
    S(support::format("vmovupd %s,%s", wreg, wreg), 0.5, 1, "P0|P5");
  }
  for (const char* op : {"addsd", "vaddsd", "subsd", "vsubsd", "mulsd",
                         "vmulsd"}) {
    bool three_op = op[0] == 'v';
    S(three_op ? support::format("%s v128,v128,v128", op)
               : support::format("%s v128,v128", op),
      0.5, 4, "P0|P5");
  }
  for (const char* fam : {"vfmadd", "vfmsub", "vfnmadd"}) {
    for (const char* v : {"132", "213", "231"}) {
      S(support::format("%s%ssd v128,v128,v128", fam, v), 0.5, 4, "P0|P5");
    }
  }
  F("vdivpd v512,v512,v512", 16.0, 15, "16xP0");
  F("vdivpd v256,v256,v256", 8.0, 15, "8xP0");
  F("vdivsd v128,v128,v128", 4.0, 14, "4xP0");
  F("divsd v128,v128", 4.0, 14, "4xP0");
  F("vbroadcastsd m64,v512", 0.5, 8, kLd);
  F("vbroadcastsd m64,v256", 0.5, 8, kLd);

  return mm;
}

}  // namespace

const MachineModel& ice_lake_sp() {
  static const MachineModel mm = [] {
    MachineModel m = build_ice_lake_sp();
    m.validate();
    return m;
  }();
  return mm;
}

}  // namespace incore::uarch
