#pragma once
// The machine-description file (MDF) layer: the declarative, line-oriented
// text form of a MachineModel (grammar: docs/machine-format.md).
//
// This is what makes the machine model *data* in the OSACA sense: the
// built-in models can be exported, edited, versioned and reloaded without
// recompiling the stack, and a reloaded model is required to reproduce
// byte-identical predictions (numbers are serialized with exact
// double-round-trip precision and the form table is complete).

#include <string>
#include <string_view>

#include "uarch/model.hpp"

namespace incore::uarch {

/// Parses an MDF document.  `source_name` is used in diagnostics
/// ("<name>:<line>: message"); every failure throws support::ModelError
/// with the offending line number.  The returned model has been
/// validate()d.
[[nodiscard]] MachineModel load_machine_string(std::string_view text,
                                               std::string_view source_name =
                                                   "<string>");

/// Loads and validates an MDF file.  Throws support::ModelError when the
/// file cannot be read or fails to parse/validate.
[[nodiscard]] MachineModel load_machine_file(const std::string& path);

/// Serializes a model to MDF text.  Deterministic: header fields in fixed
/// order, forms sorted lexicographically, numbers in shortest
/// exact-round-trip decimal form.  save → load → save is a fixed point.
[[nodiscard]] std::string save_machine_string(const MachineModel& mm);

/// Writes save_machine_string(mm) to `path`; throws support::ModelError on
/// I/O failure.
void save_machine_file(const MachineModel& mm, const std::string& path);

/// Spelling of the family tag in MDF headers ("neoverse-v2", "golden-cove",
/// "zen4") and the reverse mapping; family_from_name returns false for
/// unknown spellings.
[[nodiscard]] const char* family_name(Micro m);
[[nodiscard]] bool family_from_name(std::string_view name, Micro& out);

}  // namespace incore::uarch
