// Machine model: Intel Golden Cove (Sapphire Rapids, Xeon Platinum 8470).
//
// Port layout (12 ports):
//   P0,P1,P5,P6,P10  integer ALU (5 units); P0,P1,P5 also FP/vector
//   P2,P3            load pipes (512 bit capable), P11 load pipe (<=256 bit)
//   P4,P9            store-data pipes (256 bit each; a 512-bit store
//                    occupies both)
//   P7,P8            store-address AGUs
//   P6               primary branch port
//
// For 512-bit FP operations ports 0 and 1 fuse into a single 512-bit unit;
// we model 512-bit FP ops on {P0|P5} and <=256-bit adds on {P1|P5},
// muls/FMAs on {P0|P5}, which yields the paper's Table III throughput:
//   VEC(8xDP) ADD/MUL/FMA: 2/cy -> 16 elem/cy, lat 2/4/4
//   scalar    ADD/MUL/FMA: 2/cy,               lat 2/4/5
//   VEC FDIV zmm: inv 16 (0.5 elem/cy), lat 14; scalar: inv 4, lat 14
//   gather: 1/3 cache line per cycle, lat 20

#include <string>

#include "support/strings.hpp"
#include "uarch/builder.hpp"
#include "uarch/model.hpp"

namespace incore::uarch::detail {

MachineModel build_golden_cove() {
  MachineModel mm("golden-cove", Micro::GoldenCove, asmir::Isa::X86_64,
                  {"P0", "P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8", "P9",
                   "P10", "P11"});
  mm.simd_width_bits = 512;
  mm.l1_load_latency = 5.0;
  mm.loads_per_cycle = 2;   // at 512 bit (3/cy at <=256 bit via P11)
  mm.stores_per_cycle = 2;  // at <=256 bit
  CoreResources& r = mm.resources();
  r.decode_width = 6;
  r.rename_width = 6;
  r.retire_width = 8;
  r.rob_size = 512;
  r.scheduler_size = 200;
  r.load_queue = 192;
  r.store_queue = 114;

  const FormReg F(mm);

  // ---- Integer ALU -------------------------------------------------------
  const std::string kAlu = port_group(mm, {"P0", "P1", "P5", "P6", "P10"});
  for (const char* w : {"r64", "r32"}) {
    for (const char* op : {"add", "sub", "and", "or", "xor"}) {
      F(support::format("%s %s,%s", op, w, w), 0.2, 1, kAlu);
      F(support::format("%s i,%s", op, w), 0.2, 1, kAlu);
    }
    for (const char* op : {"inc", "dec", "neg", "not"}) {
      F(support::format("%s %s", op, w), 0.2, 1, kAlu);
    }
    F(support::format("cmp %s,%s", w, w), 0.2, 1, kAlu);
    F(support::format("cmp i,%s", w), 0.2, 1, kAlu);
    F(support::format("test %s,%s", w, w), 0.2, 1, kAlu);
    F(support::format("test i,%s", w), 0.2, 1, kAlu);
    F(support::format("mov %s,%s", w, w), 0.2, 1, kAlu);  // pre-elimination
    F(support::format("mov i,%s", w), 0.2, 1, kAlu);
    for (const char* op : {"shl", "sal", "shr", "sar"}) {
      F(support::format("%s i,%s", op, w), 0.5, 1, "P0|P6");
      F(support::format("%s %s", op, w), 0.5, 1, "P0|P6");
    }
    F(support::format("imul %s,%s", w, w), 1.0, 3, "P1");
    F(support::format("imul i,%s,%s", w, w), 1.0, 3, "P1");
    F(support::format("lea m64,%s", w), 0.5, 1, "P1|P5");
    F(support::format("cmove %s,%s", w, w), 0.5, 1, "P0|P6");
    F(support::format("cmovne %s,%s", w, w), 0.5, 1, "P0|P6");
    F(support::format("cmovl %s,%s", w, w), 0.5, 1, "P0|P6");
    F(support::format("cmovg %s,%s", w, w), 0.5, 1, "P0|P6");
  }
  F("movslq r32,r64", 0.2, 1, kAlu);
  F("movzbl m8,r32", 0.5, 5, "P2|P3|P11");
  F("nop", 0.125, 0, "");

  // ---- Branches ----------------------------------------------------------
  for (const char* b : {"jmp", "je", "jne", "jz", "jnz", "jg", "jge", "jl",
                        "jle", "ja", "jae", "jb", "jbe", "js", "jns"}) {
    F(support::format("%s l", b), 0.5, 1, "P6|P0");
  }
  F("call l", 1.0, 2, "P6;P4|P9;P7|P8");
  F("ret", 1.0, 2, "P6;P2|P3|P11");

  // ---- Loads -------------------------------------------------------------
  const std::string kLd = port_group(mm, {"P2", "P3", "P11"});  // <=256-bit loads: 3/cy
  const std::string kLd512 = port_group(mm, {"P2", "P3"});     // 512-bit loads: 2/cy
  F("mov m64,r64", 1.0 / 3, 5, kLd);
  F("mov m32,r32", 1.0 / 3, 5, kLd);
  F("movslq m32,r64", 1.0 / 3, 5, kLd);
  for (const char* m : {"vmovupd", "vmovapd", "vmovups", "vmovaps", "vmovdqu",
                        "vmovdqa", "vmovdqu64", "vmovdqa64"}) {
    F(support::format("%s m512,v512", m), 0.5, 7, kLd512);
    F(support::format("%s m256,v256", m), 1.0 / 3, 7, kLd);
    F(support::format("%s m128,v128", m), 1.0 / 3, 7, kLd);
  }
  for (const char* m : {"movupd", "movapd", "movsd", "vmovsd", "movss",
                        "vmovss"}) {
    int w = (std::string(m).find("sd") != std::string::npos) ? 64
            : (std::string(m).find("ss") != std::string::npos) ? 32
                                                               : 128;
    F(support::format("%s m%d,v128", m, w), 1.0 / 3, 7, kLd);
  }
  F("vbroadcastsd m64,v512", 0.5, 8, kLd512);
  F("vbroadcastsd m64,v256", 1.0 / 3, 8, kLd);
  F("vmovddup m64,v128", 1.0 / 3, 8, kLd);
  F("_load.m8", 1.0 / 3, 5, kLd);
  F("_load.m16", 1.0 / 3, 5, kLd);
  F("_load.m32", 1.0 / 3, 5, kLd);
  F("_load.m64", 1.0 / 3, 5, kLd);
  F("_load.m128", 1.0 / 3, 7, kLd);
  F("_load.m256", 1.0 / 3, 7, kLd);
  F("_load.m512", 0.5, 7, kLd512);
  // Gathers: Table III: 1/3 cache line per cycle, latency 20.  A zmm gather
  // collects 8 DP elements (worst case 8 lines -> 24 cy).
  F("vgatherdpd g512,v512,k", 24.0, 20, "8xP2|P3");
  F("vgatherqpd g512,v512,k", 24.0, 20, "8xP2|P3");
  F("vgatherdpd g256,v256,k", 12.0, 20, "4xP2|P3");
  F("vgatherqpd g256,v256,k", 12.0, 20, "4xP2|P3");
  F("_gather.m512", 24.0, 20, "8xP2|P3");
  F("_gather.m256", 12.0, 20, "4xP2|P3");

  // ---- Stores ------------------------------------------------------------
  // Store = data micro-op + address micro-op.
  const std::string kStD = port_group(mm, {"P4", "P9"});
  const std::string kStA = port_group(mm, {"P7", "P8"});
  const std::string std_ports = std::string(kStD) + ";" + kStA;
  const std::string st512_ports = std::string("P4;P9;") + kStA;
  F("mov r64,m64", 0.5, 1, std_ports.c_str());
  F("mov r32,m32", 0.5, 1, std_ports.c_str());
  F("mov i,m64", 0.5, 1, std_ports.c_str());
  F("mov i,m32", 0.5, 1, std_ports.c_str());
  for (const char* m : {"vmovupd", "vmovapd", "vmovups", "vmovaps", "vmovdqu",
                        "vmovdqa64"}) {
    F(support::format("%s v512,m512", m), 1.0, 1, st512_ports.c_str());
    F(support::format("%s v256,m256", m), 0.5, 1, std_ports.c_str());
    F(support::format("%s v128,m128", m), 0.5, 1, std_ports.c_str());
  }
  F("movupd v128,m128", 0.5, 1, std_ports.c_str());
  F("movapd v128,m128", 0.5, 1, std_ports.c_str());
  F("movsd v128,m64", 0.5, 1, std_ports.c_str());
  F("vmovsd v128,m64", 0.5, 1, std_ports.c_str());
  // Non-temporal stores (write-combining path; same issue ports).
  F("vmovntpd v512,m512", 1.0, 1, st512_ports.c_str());
  F("vmovntpd v256,m256", 0.5, 1, std_ports.c_str());
  F("movntpd v128,m128", 0.5, 1, std_ports.c_str());
  F("movnti r64,m64", 0.5, 1, std_ports.c_str());
  F("_store.m32", 0.5, 1, std_ports.c_str());
  F("_store.m64", 0.5, 1, std_ports.c_str());
  F("_store.m128", 0.5, 1, std_ports.c_str());
  F("_store.m256", 0.5, 1, std_ports.c_str());
  F("_store.m512", 1.0, 1, st512_ports.c_str());

  // ---- FP / vector arithmetic -------------------------------------------
  // ADD family: P1|P5 (<=256) and P0|P5 (512, fused unit), latency 2.
  struct Widths { const char* reg; const char* ports; };
  const Widths add_w[] = {{"v512", "P0|P5"}, {"v256", "P1|P5"}, {"v128", "P1|P5"}};
  for (const auto& [wreg, ports] : add_w) {
    for (const char* op : {"vaddpd", "vsubpd", "vaddps", "vsubps"}) {
      F(support::format("%s %s,%s,%s", op, wreg, wreg, wreg), 0.5, 2, ports);
    }
    for (const char* op : {"vmaxpd", "vminpd"}) {
      F(support::format("%s %s,%s,%s", op, wreg, wreg, wreg), 0.5, 2, ports);
    }
  }
  const Widths mul_w[] = {{"v512", "P0|P5"}, {"v256", "P0|P5"}, {"v128", "P0|P5"}};
  for (const auto& [wreg, ports] : mul_w) {
    for (const char* op : {"vmulpd", "vmulps"}) {
      F(support::format("%s %s,%s,%s", op, wreg, wreg, wreg), 0.5, 4, ports);
    }
    for (const char* fam : {"vfmadd", "vfmsub", "vfnmadd", "vfnmsub"}) {
      for (const char* v : {"132", "213", "231"}) {
        F(support::format("%s%spd %s,%s,%s", fam, v, wreg, wreg, wreg), 0.5, 4,
          ports);
      }
    }
  }
  // Scalar SSE/AVX arithmetic: ADD lat 2, MUL 4, FMA 5 (Table III).
  for (const char* op : {"addsd", "vaddsd", "subsd", "vsubsd", "addss",
                         "vaddss", "maxsd", "vmaxsd", "minsd", "vminsd"}) {
    bool three_op = op[0] == 'v';
    F(three_op ? support::format("%s v128,v128,v128", op)
               : support::format("%s v128,v128", op),
      0.5, 2, "P1|P5");
  }
  for (const char* op : {"mulsd", "vmulsd", "mulss", "vmulss"}) {
    bool three_op = op[0] == 'v';
    F(three_op ? support::format("%s v128,v128,v128", op)
               : support::format("%s v128,v128", op),
      0.5, 4, "P0|P5");
  }
  for (const char* fam : {"vfmadd", "vfmsub", "vfnmadd", "vfnmsub"}) {
    for (const char* v : {"132", "213", "231"}) {
      F(support::format("%s%ssd v128,v128,v128", fam, v), 0.5, 5, "P0|P5");
    }
  }
  // Divide / sqrt: one divider unit behind P0 (non-pipelined).
  F("vdivpd v512,v512,v512", 16.0, 14, "16xP0");
  F("vdivpd v256,v256,v256", 8.0, 14, "8xP0");
  F("vdivpd v128,v128,v128", 4.0, 14, "4xP0");
  F("divpd v128,v128", 4.0, 14, "4xP0");
  F("divsd v128,v128", 4.0, 14, "4xP0");
  F("vdivsd v128,v128,v128", 4.0, 14, "4xP0");
  F("divss v128,v128", 3.0, 11, "3xP0");
  F("vdivss v128,v128,v128", 3.0, 11, "3xP0");
  F("vsqrtpd v512,v512", 24.0, 20, "24xP0");
  F("vsqrtpd v256,v256", 12.0, 20, "12xP0");
  F("sqrtsd v128,v128", 6.0, 18, "6xP0");
  F("vsqrtsd v128,v128,v128", 6.0, 18, "6xP0");
  // Bitwise / blend / moves.
  for (const auto& [wreg, ports] : add_w) {
    for (const char* op : {"vxorpd", "vandpd", "vorpd", "vxorps", "vandps"}) {
      F(support::format("%s %s,%s,%s", op, wreg, wreg, wreg), 1.0 / 3, 1,
        "P0|P1|P5");
    }
    F(support::format("vblendvpd %s,%s,%s,%s", wreg, wreg, wreg, wreg), 0.5, 3,
      "P0|P1|P5");
    F(support::format("vmovapd %s,%s", wreg, wreg), 1.0 / 3, 1, "P0|P1|P5");
    F(support::format("vmovupd %s,%s", wreg, wreg), 1.0 / 3, 1, "P0|P1|P5");
  }
  F("xorpd v128,v128", 1.0 / 3, 1, "P0|P1|P5");
  F("movapd v128,v128", 1.0 / 3, 1, "P0|P1|P5");
  F("movsd v128,v128", 0.5, 1, "P0|P1|P5");
  F("vmovsd v128,v128,v128", 0.5, 1, "P0|P1|P5");
  // Shuffles / permutes: the cross-lane shuffle unit sits on P5.
  F("vextractf128 i,v256,v128", 1.0, 3, "P5");
  F("vextractf64x4 i,v512,v256", 1.0, 3, "P5");
  F("vextractf64x2 i,v512,v128", 1.0, 3, "P5");
  F("vperm2f128 i,v256,v256,v256", 1.0, 3, "P5");
  F("vpermilpd i,v128,v128", 0.5, 1, "P1|P5");
  F("vpermilpd i,v256,v256", 0.5, 1, "P1|P5");
  F("vunpckhpd v128,v128,v128", 0.5, 1, "P1|P5");
  F("unpckhpd v128,v128", 0.5, 1, "P1|P5");
  F("vshufpd i,v256,v256,v256", 0.5, 1, "P1|P5");
  F("vhaddpd v128,v128,v128", 2.0, 6, "P1|P5;2xP5");
  F("haddpd v128,v128", 2.0, 6, "P1|P5;2xP5");
  F("vbroadcastsd v128,v512", 1.0, 3, "P5");
  F("vbroadcastsd v128,v256", 1.0, 3, "P5");
  // Converts.
  F("vcvtsi2sd r64,v128,v128", 1.0, 7, "P0|P1;P5");
  F("vcvtsi2sd r32,v128,v128", 1.0, 7, "P0|P1;P5");
  F("cvtsi2sd r64,v128", 1.0, 7, "P0|P1;P5");
  F("vcvttsd2si v128,r64", 1.0, 7, "P0|P1;P5");
  F("cvttsd2si v128,r64", 1.0, 7, "P0|P1;P5");
  F("vcvtdq2pd v128,v256", 1.0, 5, "P5;P0|P1");
  // AVX-512 mask handling.
  F("vcmppd i,v512,v512,k", 1.0, 4, "P5");
  F("vcmppd i,v256,v256,k", 1.0, 4, "P5");
  F("vcmppd i,v256,v256,v256", 0.5, 4, "P1|P5");
  F("kmovw k,k", 0.5, 1, "P0|P5");
  F("kmovw r32,k", 1.0, 3, "P5");
  F("kmovw k,r32", 1.0, 3, "P0");
  F("kmovb k,r32", 1.0, 3, "P0");
  F("kortestw k,k", 1.0, 3, "P0");
  F("kandw k,k,k", 0.5, 1, "P0|P5");
  F("knotw k,k", 0.5, 1, "P0|P5");
  F("vzeroupper", 0.25, 0, "");

  // ---- Extended coverage: integer SIMD -----------------------------------
  for (const char* wreg : {"v512", "v256", "v128"}) {
    const bool zmm = std::string(wreg) == "v512";
    const char* ports = zmm ? "P0|P5" : "P0|P1|P5";
    double tp = zmm ? 0.5 : 1.0 / 3.0;
    for (const char* op : {"vpaddd", "vpaddq", "vpsubd", "vpsubq", "vpminsd",
                           "vpmaxsd", "vpabsd"}) {
      F(support::format("%s %s,%s,%s", op, wreg, wreg, wreg), tp, 1, ports);
    }
    for (const char* op : {"vpand", "vpor", "vpxor", "vpandq", "vporq",
                           "vpxorq", "vpandn"}) {
      F(support::format("%s %s,%s,%s", op, wreg, wreg, wreg), tp, 1, ports);
    }
    F(support::format("vpmulld %s,%s,%s", wreg, wreg, wreg), 2.0, 10,
      zmm ? "2xP0" : "2xP0|P1");
    F(support::format("vpmullq %s,%s,%s", wreg, wreg, wreg), 3.0, 15,
      zmm ? "3xP0" : "3xP0|P1");
    for (const char* op : {"vpsllq", "vpsrlq", "vpslld", "vpsrld"}) {
      F(support::format("%s i,%s,%s", op, wreg, wreg), 0.5, 1,
        zmm ? "P0|P5" : "P0|P1");
    }
    // Merge-masked arithmetic: same pipes, the mask is read alongside.
    for (const char* op : {"vaddpd", "vmulpd", "vfmadd231pd"}) {
      F(support::format("%s %s,%s,%s,k", op, wreg, wreg, wreg), 0.5,
        std::string(op) == "vaddpd" ? 2 : 4, zmm ? "P0|P5" : "P0|P5");
    }
    F(support::format("vmovupd %s,%s,k", wreg, wreg), 0.5, 1, "P0|P5");
    F(support::format("vpbroadcastd %s,%s", "v128", wreg), 1.0, 3, "P5");
  }
  // Masked loads/stores.
  F("vmovupd m512,v512,k", 0.5, 8, kLd512);
  F("vmovupd m256,v256,k", 1.0 / 3, 8, kLd);
  F("vmovupd v512,m512,k", 1.0, 1, st512_ports.c_str());
  F("vmovupd v256,m256,k", 0.5, 1, std_ports.c_str());
  // Single-precision divide/sqrt and conversions.
  F("vdivps v512,v512,v512", 12.0, 12, "12xP0");
  F("vdivps v256,v256,v256", 6.0, 11, "6xP0");
  F("vsqrtps v256,v256", 9.0, 15, "9xP0");
  F("vcvtpd2ps v512,v256", 1.0, 7, "P5;P0|P1");
  F("vcvtps2pd v256,v512", 1.0, 7, "P5;P0|P1");
  F("vcvtdq2pd v256,v512", 1.0, 7, "P5;P0|P1");
  // Permutes / inserts.
  F("vpermpd i,v512,v512", 1.0, 3, "P5");
  F("vpermpd i,v256,v256", 1.0, 3, "P5");
  F("vpermd v512,v512,v512", 1.0, 3, "P5");
  F("vinsertf128 i,v128,v256,v256", 1.0, 3, "P5");
  F("vinsertf64x4 i,v256,v512,v512", 1.0, 3, "P5");
  F("vshuff64x2 i,v512,v512,v512", 1.0, 3, "P5");
  // Integer scalar odds and ends.
  for (const char* w : {"r64", "r32"}) {
    F(support::format("popcnt %s,%s", w, w), 1.0, 3, "P1");
    F(support::format("lzcnt %s,%s", w, w), 1.0, 3, "P1");
    F(support::format("tzcnt %s,%s", w, w), 1.0, 3, "P1");
    F(support::format("bswap %s", w), 0.5, 1, "P0|P1");
    F(support::format("adc %s,%s", w, w), 0.5, 1, "P0|P6");
    F(support::format("sbb %s,%s", w, w), 0.5, 1, "P0|P6");
    F(support::format("rol i,%s", w), 0.5, 1, "P0|P6");
    F(support::format("ror i,%s", w), 0.5, 1, "P0|P6");
    F(support::format("sete %s", w), 0.5, 1, "P0|P6");
    F(support::format("setne %s", w), 0.5, 1, "P0|P6");
  }
  F("div r64", 21.0, 21, "21xP1");  // integer divide, non-pipelined
  F("idiv r64", 21.0, 21, "21xP1");
  F("mul r64", 1.0, 4, "P1;P5");
  F("xchg r64,r64", 1.0, 2, "P0|P1;P5|P6");
  F("movzwl m16,r32", 1.0 / 3, 5, kLd);
  F("movsbl m8,r32", 1.0 / 3, 5, kLd);

  return mm;
}

}  // namespace incore::uarch::detail
