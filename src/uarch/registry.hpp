#pragma once
// The open machine registry: the successor of the closed `Micro` enum as
// the way the prediction stack names and obtains machine models.
//
// A MachineRef is a (name, model) pair; the registry resolves user-facing
// spellings to refs from three sources:
//   1. built-in models registered at startup (the paper trio plus the
//      auxiliary Ice Lake SP generational-comparison model), addressable by
//      their canonical name and the historical CLI aliases;
//   2. machine-description files (docs/machine-format.md): any argument that
//      looks like a path — contains a '/' or ends in ".mdf" — is loaded with
//      uarch::load_machine_file and cached under that path;
//   3. models registered programmatically with add_model (what-if clones).
//
// The `Micro` enum survives underneath as the *family tag*: every model —
// built-in or loaded — carries one, and it selects the trio-specific tables
// that live outside the MachineModel itself (ECM hierarchy, chip power,
// testbed silicon config, compiler-personality codegen).  See
// MachineModel::micro() and the `family` line of the file format.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "uarch/model.hpp"

namespace incore::uarch {

/// A resolved machine: the registry name it answers to plus the (immutable,
/// registry-owned) model.  Cheap to copy; the model pointer stays valid for
/// the lifetime of the process.
struct MachineRef {
  std::string name;
  const MachineModel* model = nullptr;

  [[nodiscard]] const MachineModel& operator*() const { return *model; }
  [[nodiscard]] const MachineModel* operator->() const { return model; }
  explicit operator bool() const { return model != nullptr; }
};

class MachineRegistry {
 public:
  /// The process-wide registry, pre-populated with the built-in models.
  [[nodiscard]] static MachineRegistry& instance();

  /// Registers a lazily-built model under `name` (+ aliases).  `trio_tag`
  /// marks members of the paper's testbed trio (consulted by
  /// micro_from_name and the sweep matrix); the auxiliary models pass
  /// nullopt.  Throws support::ModelError if any spelling is taken.
  void add_builtin(std::string name, std::vector<std::string> aliases,
                   std::function<MachineModel()> build,
                   std::optional<Micro> trio_tag);

  /// Registers an owned model under `name` (what-if clones built at run
  /// time).  Re-registration under the same name replaces the previous
  /// model; built-in names cannot be shadowed (throws ModelError).
  MachineRef add_model(std::string name, MachineModel model);

  /// Resolves a machine name, alias (case-insensitive) or .mdf file path.
  /// Throws support::ModelError when nothing matches (or the file fails to
  /// load/validate).
  [[nodiscard]] MachineRef resolve(std::string_view name_or_path);
  /// Non-throwing variant for CLI-style lookups; `out` is untouched on
  /// failure.  File-load *errors* (the spelling was a path but the file is
  /// malformed) still throw, so the user sees the loader diagnostic.
  [[nodiscard]] bool try_resolve(std::string_view name_or_path,
                                 MachineRef& out);

  /// The built-in models in registration (paper) order, building them on
  /// first use.
  [[nodiscard]] std::vector<MachineRef> builtins();

  /// Members of the paper's testbed trio, in paper order.
  [[nodiscard]] std::vector<MachineRef> trio();

  /// One-line help text generated from the registered names and aliases.
  [[nodiscard]] std::string names_help() const;

  /// Trio tag for a registered *name* (not a path); nullopt for auxiliary
  /// models and unknown names.  Backs uarch::micro_from_name.
  [[nodiscard]] std::optional<Micro> trio_tag(std::string_view name) const;

 private:
  MachineRegistry();
  struct Entry;
  [[nodiscard]] Entry* find_entry(std::string_view lower_name);
  [[nodiscard]] const Entry* find_entry(std::string_view lower_name) const;
  [[nodiscard]] const MachineModel& materialize(Entry& e);

  struct Entry {
    std::string name;                  // canonical registered name
    std::vector<std::string> aliases;  // lower-cased alternative spellings
    std::function<MachineModel()> build;  // empty once materialized
    std::unique_ptr<MachineModel> model;  // owned; stable address
    std::optional<Micro> trio_tag;
    bool is_builtin = false;
  };
  std::vector<std::unique_ptr<Entry>> entries_;   // registration order
  std::vector<std::unique_ptr<Entry>> file_cache_;  // resolved .mdf paths
};

/// Convenience wrappers over MachineRegistry::instance().
[[nodiscard]] MachineRef resolve_machine(std::string_view name_or_path);
[[nodiscard]] bool try_resolve_machine(std::string_view name_or_path,
                                       MachineRef& out);

/// Ref for a built-in trio member (the bridge for call sites that still
/// think in Micro, e.g. sweep option builders).
[[nodiscard]] MachineRef machine_ref(Micro m);

}  // namespace incore::uarch
