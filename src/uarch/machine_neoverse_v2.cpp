// Machine model: Arm Neoverse V2 (Nvidia Grace CPU Superchip).
//
// Port layout (17 ports), compiled from Arm's Software Optimization Guide as
// summarized in the paper's Fig. 1:
//   B0,B1         branch
//   I0..I3        single-cycle integer ALU
//   M0,M1         multi-cycle integer (also shifts-with-ALU, MUL, DIV, SVE
//                 predicate generation)
//   LD0..LD2      load pipes, 128 bit each (3 loads/cy)
//   ST0,ST1       store-data pipes, 128 bit each (2 stores/cy)
//   V0..V3        FP/ASIMD/SVE pipes, 128 bit each
//
// Headline values anchored to the paper's Table III:
//   VEC(2xDP) ADD/MUL/FMA: 4/cy (8 elem/cy), lat 2/3/4
//   scalar   ADD/MUL/FMA: 4/cy,               lat 2/3/4
//   VEC FDIV: 0.4 elem/cy (inv 5),  lat 5;  scalar FDIV: inv 2.5, lat 12
//   gather:  1/4 cache line per cycle, lat 9

#include <string>

#include "support/strings.hpp"
#include "uarch/builder.hpp"
#include "uarch/model.hpp"

namespace incore::uarch::detail {

MachineModel build_neoverse_v2() {
  MachineModel mm("neoverse-v2", Micro::NeoverseV2, asmir::Isa::AArch64,
                  {"B0", "B1", "I0", "I1", "I2", "I3", "M0", "M1", "LD0",
                   "LD1", "LD2", "ST0", "ST1", "V0", "V1", "V2", "V3"});
  mm.simd_width_bits = 128;
  mm.l1_load_latency = 4.0;
  mm.loads_per_cycle = 3;
  mm.stores_per_cycle = 2;
  CoreResources& r = mm.resources();
  r.decode_width = 8;
  r.rename_width = 8;
  r.retire_width = 8;
  r.rob_size = 320;
  r.scheduler_size = 120;
  r.load_queue = 96;
  r.store_queue = 64;

  const FormReg F(mm);

  // ---- Integer ALU -------------------------------------------------------
  const std::string kAluAll = port_group_matching(mm, {"I", "M"});  // 6 int units
  const std::string kAluM = port_group_matching(mm, {"M"});
  for (const char* w : {"r64", "r32"}) {
    for (const char* op : {"add", "sub", "and", "orr", "eor", "bic", "orn",
                           "eon", "neg", "mvn"}) {
      F(support::format("%s %s,%s,%s", op, w, w, w).c_str(), 1.0 / 6, 1, kAluAll);
      F(support::format("%s %s,%s,i", op, w, w).c_str(), 1.0 / 6, 1, kAluAll);
      // Shifted-register forms execute on the multi-cycle pipes.
      F(support::format("%s %s,%s,%s,i", op, w, w, w).c_str(), 0.5, 2, kAluM);
    }
    for (const char* op : {"adds", "subs", "ands", "bics"}) {
      F(support::format("%s %s,%s,%s", op, w, w, w).c_str(), 1.0 / 6, 1, kAluAll);
      F(support::format("%s %s,%s,i", op, w, w).c_str(), 1.0 / 6, 1, kAluAll);
    }
    for (const char* op : {"lsl", "lsr", "asr", "ror"}) {
      F(support::format("%s %s,%s,i", op, w, w).c_str(), 1.0 / 6, 1, kAluAll);
      F(support::format("%s %s,%s,%s", op, w, w, w).c_str(), 0.5, 2, kAluM);
    }
    F(support::format("cmp %s,%s", w, w).c_str(), 1.0 / 6, 1, kAluAll);
    F(support::format("cmp %s,i", w).c_str(), 1.0 / 6, 1, kAluAll);
    F(support::format("cmn %s,i", w).c_str(), 1.0 / 6, 1, kAluAll);
    F(support::format("tst %s,%s", w, w).c_str(), 1.0 / 6, 1, kAluAll);
    F(support::format("tst %s,i", w).c_str(), 1.0 / 6, 1, kAluAll);
    F(support::format("mov %s,%s", w, w).c_str(), 1.0 / 6, 1, kAluAll);
    F(support::format("mov %s,i", w).c_str(), 1.0 / 6, 1, kAluAll);
    F(support::format("movz %s,i", w).c_str(), 1.0 / 6, 1, kAluAll);
    F(support::format("movz %s,i,i", w).c_str(), 1.0 / 6, 1, kAluAll);
    F(support::format("movk %s,i", w).c_str(), 1.0 / 6, 1, kAluAll);
    F(support::format("movk %s,i,i", w).c_str(), 1.0 / 6, 1, kAluAll);
    F(support::format("mul %s,%s,%s", w, w, w).c_str(), 0.5, 2, kAluM);
    F(support::format("madd %s,%s,%s,%s", w, w, w, w).c_str(), 0.5, 2, kAluM);
    F(support::format("msub %s,%s,%s,%s", w, w, w, w).c_str(), 0.5, 2, kAluM);
    F(support::format("smull %s,%s,%s", w, w, w).c_str(), 0.5, 2, kAluM);
    F(support::format("sdiv %s,%s,%s", w, w, w).c_str(), 5.0, 12, "5xM0");
    F(support::format("udiv %s,%s,%s", w, w, w).c_str(), 5.0, 12, "5xM0");
    F(support::format("csel %s,%s,%s", w, w, w).c_str(), 0.25, 1, "I0|I1|I2|I3");
    F(support::format("cset %s", w).c_str(), 0.25, 1, "I0|I1|I2|I3");
  }
  F("sxtw r64,r32", 1.0 / 6, 1, kAluAll);
  F("uxtw r64,r32", 1.0 / 6, 1, kAluAll);
  F("sbfiz r64,r64,i,i", 0.5, 2, kAluM);
  F("ubfiz r64,r64,i,i", 0.5, 2, kAluM);
  F("adrp r64,l", 1.0 / 6, 1, kAluAll);
  F("adr r64,l", 1.0 / 6, 1, kAluAll);
  F("nop", 0.125, 0, "");

  // ---- Branches ----------------------------------------------------------
  const std::string kBr = port_group_matching(mm, {"B"});
  F("b l", 0.5, 1, kBr);
  F("b", 0.5, 1, kBr);  // mnemonic fallback for "b.<cond>" is separate below
  F("ret", 0.5, 1, kBr);
  F("ret r64", 0.5, 1, kBr);
  F("bl l", 0.5, 1, kBr);
  F("cbz r64,l", 0.5, 1, kBr);
  F("cbnz r64,l", 0.5, 1, kBr);
  F("cbz r32,l", 0.5, 1, kBr);
  F("cbnz r32,l", 0.5, 1, kBr);
  F("tbz r64,i,l", 0.5, 1, kBr);
  F("tbnz r64,i,l", 0.5, 1, kBr);
  for (const char* cc : {"eq", "ne", "lt", "le", "gt", "ge", "lo", "ls", "hi",
                         "hs", "mi", "pl", "cc", "cs", "any", "none", "last",
                         "nlast", "first", "vs", "vc"}) {
    F(support::format("b.%s l", cc).c_str(), 0.5, 1, kBr);
  }

  // ---- Loads -------------------------------------------------------------
  const std::string kLd = port_group_matching(mm, {"LD"});
  // Integer loads: 4-cycle L1 latency, 3/cy.
  F("ldr r64,m64", 1.0 / 3, 4, kLd);
  F("ldr r32,m32", 1.0 / 3, 4, kLd);
  F("ldrsw r64,m32", 1.0 / 3, 4, kLd);
  F("ldp r64,r64,m128", 1.0 / 3, 4, kLd);
  F("ldp r32,r32,m64", 1.0 / 3, 4, kLd);
  // FP/vector loads: 6-cycle L1 latency.
  F("ldr v128,m128", 1.0 / 3, 6, kLd);
  F("ldr v64,m64", 1.0 / 3, 6, kLd);
  F("ldr v32,m32", 1.0 / 3, 6, kLd);
  F("ldur v128,m128", 1.0 / 3, 6, kLd);
  F("ldur v64,m64", 1.0 / 3, 6, kLd);
  F("ldp v128,v128,m256", 2.0 / 3, 6, "2xLD0|LD1|LD2");
  F("ldp v64,v64,m128", 1.0 / 3, 6, kLd);
  F("ld1 v128,m128", 1.0 / 3, 6, kLd);
  F("ld1 v128,v128,m256", 2.0 / 3, 6, "2xLD0|LD1|LD2");
  F("ld1r v128,m64", 1.0 / 3, 8, "LD0|LD1|LD2;0.25xV0|V1|V2|V3");
  // SVE contiguous loads (z = 128 bit on V2).
  F("ld1d v128,p,m128", 1.0 / 3, 6, kLd);
  F("ld1w v128,p,m128", 1.0 / 3, 6, kLd);
  F("ld1rd v128,p,m64", 1.0 / 3, 8, "LD0|LD1|LD2;0.25xV0|V1|V2|V3");
  F("ldnt1d v128,p,m128", 1.0 / 3, 6, kLd);
  // SVE gather: paper Table III: 1/4 cache line per cycle, latency 9.
  // A 128-bit z gather fetches 2 elements (worst case 2 lines -> 8 cy).
  F("ld1d v128,p,g128", 8.0, 9, "2xLD0|LD1|LD2");
  F("ld1w v128,p,g128", 8.0, 9, "2xLD0|LD1|LD2");
  // Synthetic micro-ops for folded accesses (rare on AArch64).
  F("_load.m32", 1.0 / 3, 4, kLd);
  F("_load.m64", 1.0 / 3, 4, kLd);
  F("_load.m128", 1.0 / 3, 6, kLd);
  F("_load.m256", 2.0 / 3, 6, "2xLD0|LD1|LD2");
  F("_gather.m128", 8.0, 9, "2xLD0|LD1|LD2");
  F("prfm i,m64", 1.0 / 3, 0, kLd);
  F("prfm l,m64", 1.0 / 3, 0, kLd);

  // ---- Stores ------------------------------------------------------------
  const std::string kSt = port_group_matching(mm, {"ST"});
  F("str r64,m64", 0.5, 1, kSt);
  F("str r32,m32", 0.5, 1, kSt);
  F("stp r64,r64,m128", 0.5, 1, kSt);
  F("str v128,m128", 0.5, 1, kSt);
  F("str v64,m64", 0.5, 1, kSt);
  F("str v32,m32", 0.5, 1, kSt);
  F("stur v128,m128", 0.5, 1, kSt);
  F("stur v64,m64", 0.5, 1, kSt);
  F("stp v128,v128,m256", 1.0, 1, "2xST0|ST1");
  F("stp v64,v64,m128", 0.5, 1, kSt);
  F("st1 v128,m128", 0.5, 1, kSt);
  F("st1 v128,v128,m256", 1.0, 1, "2xST0|ST1");
  F("st1d v128,p,m128", 0.5, 1, kSt);
  F("st1w v128,p,m128", 0.5, 1, kSt);
  F("stnt1d v128,p,m128", 0.5, 1, kSt);
  F("_store.m32", 0.5, 1, kSt);
  F("_store.m64", 0.5, 1, kSt);
  F("_store.m128", 0.5, 1, kSt);
  F("_store.m256", 1.0, 1, "2xST0|ST1");

  // ---- FP / ASIMD / SVE --------------------------------------------------
  const std::string kV = port_group_matching(mm, {"V"});
  // Latencies per Table III: ADD 2, MUL 3, FMA 4.
  for (const char* w : {"v128", "v64", "v32"}) {
    for (const char* op : {"fadd", "fsub", "fmax", "fmin", "fmaxnm", "fminnm",
                           "fabd"}) {
      F(support::format("%s %s,%s,%s", op, w, w, w).c_str(), 0.25, 2, kV);
    }
    F(support::format("fmul %s,%s,%s", w, w, w).c_str(), 0.25, 3, kV);
    for (const char* op : {"fmla", "fmls"}) {
      F(support::format("%s %s,%s,%s", op, w, w, w).c_str(), 0.25, 4, kV);
    }
    for (const char* op : {"fneg", "fabs"}) {
      F(support::format("%s %s,%s", op, w, w).c_str(), 0.25, 2, kV);
    }
    F(support::format("fsqrt %s,%s", w, w).c_str(), 7.0, 13, "7xV0");
  }
  // Scalar 4-operand forms (A64 fmadd family): latency 4 per Table III.
  for (const char* w : {"v64", "v32"}) {
    for (const char* op : {"fmadd", "fmsub", "fnmadd", "fnmsub"}) {
      F(support::format("%s %s,%s,%s,%s", op, w, w, w, w).c_str(), 0.25, 4, kV);
    }
    F(support::format("fdiv %s,%s,%s", w, w, w).c_str(), 2.5, 12, "2.5xV0");
    // (fsqrt for these widths is already registered by the loop above.)
    F(support::format("fcmp %s,%s", w, w).c_str(), 0.5, 2, "V0|V1");
    F(support::format("fcmpe %s,%s", w, w).c_str(), 0.5, 2, "V0|V1");
    F(support::format("fcsel %s,%s,%s", w, w, w).c_str(), 0.25, 2, kV);
  }
  // Vector divide: Table III gives 0.4 DP elem/cy (inv 5) and latency 5.
  F("fdiv v128,v128,v128", 5.0, 5, "5xV0");
  // SVE predicated arithmetic (merging forms read the destination).
  for (const char* op : {"fadd", "fsub", "fmax", "fmin", "fmaxnm", "fminnm"}) {
    F(support::format("%s v128,p,v128,v128", op).c_str(), 0.25, 2, kV);
  }
  F("fmul v128,p,v128,v128", 0.25, 3, kV);
  for (const char* op : {"fmla", "fmls", "fmad", "fmsb", "fnmla"}) {
    F(support::format("%s v128,p,v128,v128", op).c_str(), 0.25, 4, kV);
    F(support::format("%s v128,p,v128,v128,v128", op).c_str(), 0.25, 4, kV);
  }
  F("fdiv v128,p,v128,v128", 5.0, 5, "5xV0");
  F("fdivr v128,p,v128,v128", 5.0, 5, "5xV0");
  F("fneg v128,p,v128", 0.25, 2, kV);
  F("fabs v128,p,v128", 0.25, 2, kV);
  F("fcmgt p,p,v128,v128", 0.5, 2, "V0|V1");
  F("fcmge p,p,v128,v128", 0.5, 2, "V0|V1");
  F("sel v128,p,v128,v128", 0.25, 2, kV);
  // Reductions.
  F("faddp v128,v128,v128", 0.5, 4, "V0|V1|V2|V3");
  F("faddp v64,v128", 0.5, 4, "V0|V1|V2|V3");
  F("faddv v64,p,v128", 1.0, 6, "2xV0|V1");
  F("fadda v64,p,v64,v128", 4.0, 8, "4xV0");
  F("addv v32,v128", 0.5, 4, "V0|V1");
  // Moves / permutes / converts.
  F("movi v128,i", 0.25, 2, kV);
  F("movi v64,i", 0.25, 2, kV);
  F("fmov v64,i", 0.25, 2, kV);
  F("fmov v32,i", 0.25, 2, kV);
  F("fmov v64,v64", 0.25, 2, kV);
  F("fmov v64,r64", 0.5, 3, "M0|M1");
  F("fmov r64,v64", 0.5, 2, "V0|V1");
  F("mov v128,v128", 0.25, 2, kV);
  F("mov v64,v64", 0.25, 2, kV);
  F("mov v64,v128", 0.25, 2, kV);  // lane extract alias (mov d0, v1.d[1])
  F("dup v128,r64", 0.5, 3, "M0|M1;0.25xV0|V1|V2|V3");
  F("dup v128,v128", 0.25, 2, kV);
  F("ins v128,r64", 0.5, 3, "M0|M1;0.25xV0|V1|V2|V3");
  F("ext v128,v128,v128,i", 0.25, 2, kV);
  F("zip1 v128,v128,v128", 0.25, 2, kV);
  F("zip2 v128,v128,v128", 0.25, 2, kV);
  F("uzp1 v128,v128,v128", 0.25, 2, kV);
  F("uzp2 v128,v128,v128", 0.25, 2, kV);
  F("trn1 v128,v128,v128", 0.25, 2, kV);
  F("trn2 v128,v128,v128", 0.25, 2, kV);
  for (const char* w : {"v128", "v64", "v32"}) {
    F(support::format("scvtf %s,%s", w, w).c_str(), 0.25, 3, kV);
    F(support::format("ucvtf %s,%s", w, w).c_str(), 0.25, 3, kV);
    F(support::format("fcvt %s,%s", w, w).c_str(), 0.25, 3, kV);
    F(support::format("fcvtzs %s,%s", w, w).c_str(), 0.25, 3, kV);
  }
  F("scvtf v64,r64", 0.5, 6, "M0|M1;0.5xV0|V1");
  F("scvtf v64,r32", 0.5, 6, "M0|M1;0.5xV0|V1");
  F("scvtf v128,p,v128", 0.25, 3, kV);
  F("fcvtzs r64,v64", 0.5, 5, "V0|V1;0.5xM0|M1");

  // ---- SVE predicate / loop control --------------------------------------
  F("whilelo p,r64,r64", 0.5, 2, kAluM);
  F("whilelt p,r64,r64", 0.5, 2, kAluM);
  F("ptrue p", 0.5, 2, kAluM);
  F("ptrue p,i", 0.5, 2, kAluM);
  F("ptest p,p", 0.5, 1, kAluM);
  F("pfalse p", 0.5, 1, kAluM);
  F("incb r64", 1.0 / 6, 1, kAluAll);
  F("incw r64", 1.0 / 6, 1, kAluAll);
  F("incd r64", 1.0 / 6, 1, kAluAll);
  F("cntb r64", 1.0 / 6, 1, kAluAll);
  F("cntw r64", 1.0 / 6, 1, kAluAll);
  F("cntd r64", 1.0 / 6, 1, kAluAll);
  F("index v128,r64,i", 0.5, 4, "M0|M1;0.25xV0|V1|V2|V3");
  F("index v128,i,i", 0.5, 4, "M0|M1;0.25xV0|V1|V2|V3");
  F("dup v128,i", 0.25, 2, kV);

  // ---- Extended coverage: NEON/SVE integer and permutes ------------------
  for (const char* w : {"v128", "v64"}) {
    for (const char* op : {"add", "sub", "smin", "smax", "umin", "umax",
                           "abs", "neg"}) {
      bool unary = std::string(op) == "abs" || std::string(op) == "neg";
      if (unary) {
        F(support::format("%s %s,%s", op, w, w).c_str(), 0.25, 2, kV);
      } else {
        F(support::format("%s %s,%s,%s", op, w, w, w).c_str(), 0.25, 2, kV);
      }
    }
    for (const char* op : {"and", "orr", "eor", "bic"}) {
      F(support::format("%s %s,%s,%s", op, w, w, w).c_str(), 0.25, 2, kV);
    }
    F(support::format("mul %s,%s,%s", w, w, w).c_str(), 0.5, 4, "V0|V1");
    F(support::format("shl %s,%s,i", w, w).c_str(), 0.5, 2, "V1|V3");
    F(support::format("ushr %s,%s,i", w, w).c_str(), 0.5, 2, "V1|V3");
    F(support::format("sshr %s,%s,i", w, w).c_str(), 0.5, 2, "V1|V3");
    F(support::format("cnt %s,%s", w, w).c_str(), 0.5, 2, "V0|V1");
    F(support::format("addp %s,%s,%s", w, w, w).c_str(), 0.5, 2, "V1|V3");
    F(support::format("rev64 %s,%s", w, w).c_str(), 0.25, 2, kV);
  }
  // SVE integer / predicated forms.
  F("add v128,p,v128,v128", 0.25, 2, kV);
  F("sub v128,p,v128,v128", 0.25, 2, kV);
  F("mul v128,p,v128,v128", 0.5, 4, "V0|V1");
  F("and v128,p,v128,v128", 0.25, 2, kV);
  F("orr v128,p,v128,v128", 0.25, 2, kV);
  F("eor v128,p,v128,v128", 0.25, 2, kV);
  F("lsl v128,p,v128,v128", 0.5, 2, "V1|V3");
  F("asr v128,p,v128,v128", 0.5, 2, "V1|V3");
  F("cmpgt p,p,v128,v128", 0.5, 2, "V0|V1");
  F("cmpeq p,p,v128,v128", 0.5, 2, "V0|V1");
  F("cmplo p,p,v128,v128", 0.5, 2, "V0|V1");
  F("movprfx v128,v128", 0.25, 2, kV);     // often zero-cycle via rename
  F("movprfx v128,p,v128", 0.25, 2, kV);
  F("splice v128,p,v128,v128", 0.5, 4, "V1|V3");
  F("compact v128,p,v128", 1.0, 4, "V0");
  F("lastb r64,p,v128", 1.0, 6, "V1;0.5xM0|M1");
  F("punpklo p,p", 0.5, 2, kAluM);
  F("punpkhi p,p", 0.5, 2, kAluM);
  F("uzp1 p,p,p", 0.5, 2, kAluM);
  F("brka p,p,p", 1.0, 2, "M0");
  F("and p,p,p,p", 0.5, 1, kAluM);
  // FP rounding / reciprocal family.
  for (const char* w : {"v128", "v64"}) {
    for (const char* op : {"frintm", "frinta", "frintp", "frintz", "frinte",
                           "frecpe", "frsqrte"}) {
      F(support::format("%s %s,%s", op, w, w).c_str(), 0.25, 3, kV);
    }
    F(support::format("frecps %s,%s,%s", w, w, w).c_str(), 0.25, 4, kV);
    F(support::format("frsqrts %s,%s,%s", w, w, w).c_str(), 0.25, 4, kV);
    F(support::format("fmaxv v32,%s", w).c_str(), 1.0, 6, "2xV0|V1");
    F(support::format("fminv v32,%s", w).c_str(), 1.0, 6, "2xV0|V1");
  }
  F("fmaxnmv v64,p,v128", 1.0, 6, "2xV0|V1");
  // More A64 integer.
  for (const char* w : {"r64", "r32"}) {
    for (const char* op : {"csinc", "csinv", "csneg", "cinc", "cneg"}) {
      F(support::format("%s %s,%s,%s", op, w, w, w).c_str(), 0.25, 1,
        "I0|I1|I2|I3");
    }
    F(support::format("rbit %s,%s", w, w).c_str(), 1.0 / 6, 1, kAluAll);
    F(support::format("rev %s,%s", w, w).c_str(), 1.0 / 6, 1, kAluAll);
    F(support::format("clz %s,%s", w, w).c_str(), 1.0 / 6, 1, kAluAll);
    F(support::format("extr %s,%s,%s,i", w, w, w).c_str(), 0.5, 3, kAluM);
    F(support::format("bfi %s,%s,i,i", w, w).c_str(), 0.5, 2, kAluM);
    F(support::format("ubfx %s,%s,i,i", w, w).c_str(), 1.0 / 6, 1, kAluAll);
    F(support::format("sbfx %s,%s,i,i", w, w).c_str(), 1.0 / 6, 1, kAluAll);
    F(support::format("ccmp %s,%s,i,l", w, w).c_str(), 0.5, 1, kAluM);
    F(support::format("ccmp %s,i,i,l", w).c_str(), 0.5, 1, kAluM);
  }
  F("smulh r64,r64,r64", 1.0, 3, "M0");
  F("umulh r64,r64,r64", 1.0, 3, "M0");
  // Narrow loads/stores and structure forms.
  F("ldrb r32,m8", 1.0 / 3, 4, kLd);
  F("ldrh r32,m16", 1.0 / 3, 4, kLd);
  F("strb r32,m8", 0.5, 1, kSt);
  F("strh r32,m16", 0.5, 1, kSt);
  F("ld2 v128,v128,m256", 1.0, 8, "2xLD0|LD1|LD2;0.5xV1|V3");
  F("st2 v128,v128,m256", 1.5, 4, "2xST0|ST1;0.75xV1|V3");
  F("ld1b v128,p,m128", 1.0 / 3, 6, kLd);
  F("st1b v128,p,m128", 0.5, 1, kSt);
  F("ldp r64,r64,m128,i", 1.0 / 3, 4, kLd);  // writeback pair forms
  F("ld3 v128,v128,v128,m384", 1.5, 9, "3xLD0|LD1|LD2;1xV1|V3");

  // Late accumulator forwarding on the fused multiply-accumulate family
  // (Arm SOG: accumulates forward in 2 cycles).  Consumed only when the
  // analyzer/testbed enable the feature; the defaults keep the paper's
  // OSACA-equivalent behaviour (full latency in the chain).
  for (const char* f :
       {"fmla v128,v128,v128", "fmla v64,v64,v64", "fmla v32,v32,v32",
        "fmls v128,v128,v128", "fmls v64,v64,v64", "fmls v32,v32,v32",
        "fmla v128,p,v128,v128", "fmls v128,p,v128,v128",
        "fmadd v64,v64,v64,v64", "fmadd v32,v32,v32,v32",
        "fmsub v64,v64,v64,v64", "fnmadd v64,v64,v64,v64"}) {
    mm.set_accumulator_latency(f, 2.0);
  }

  return mm;
}

}  // namespace incore::uarch::detail
