#include "exec/exec.hpp"

#include "asmir/parser.hpp"
#include "support/strings.hpp"

namespace incore::exec {

using support::format;

PipelineConfig testbed_config(uarch::Micro micro) {
  PipelineConfig cfg;
  cfg.dynamic_port_selection = true;
  cfg.zero_idiom_elimination = true;
  switch (micro) {
    case uarch::Micro::NeoverseV2:
      // Wide front end, strong taken-branch throughput, and full move
      // elimination including FP/ASIMD register copies -- the property that
      // lets the silicon beat the OSACA model on Gauss-Seidel chains that
      // contain an fmov (the paper's reported V2 outliers).
      cfg.move_elimination = true;
      cfg.taken_branch_bubble = 1.0;
      break;
    case uarch::Micro::GoldenCove:
      // GPR move elimination is fused off in Golden Cove silicon (erratum);
      // model conservatively without eliminations.
      cfg.move_elimination = false;
      cfg.taken_branch_bubble = 1.5;
      break;
    case uarch::Micro::Zen4:
      cfg.move_elimination = true;
      cfg.taken_branch_bubble = 1.25;
      // The Zen 4 divider early-exits on typical operands: measured
      // reciprocal throughput of scalar DP divides is ~5 cy while the
      // operand-independent model value is 6.5 cy.  This is the source of
      // the paper's pi-kernel over-prediction on Genoa.
      cfg.tput_overrides["divsd v128,v128"] = 5.0;
      cfg.tput_overrides["vdivsd v128,v128,v128"] = 5.0;
      break;
  }
  return cfg;
}

Measurement run(const asmir::Program& prog, const uarch::MachineModel& mm) {
  return run(prog, mm, testbed_config(mm.micro()));
}

Measurement run(const asmir::Program& prog, const uarch::MachineModel& mm,
                const PipelineConfig& cfg) {
  PipelineResult r = simulate_loop(prog, mm, cfg);
  Measurement m;
  m.cycles_per_iteration = r.cycles_per_iteration;
  m.port_utilization = r.port_utilization;
  m.backpressure_cycles = r.backpressure_cycles;
  m.port_cycles = r.port_cycles;
  m.uops_per_iteration = r.uops_per_iteration;
  m.dispatch_width = r.dispatch_width;
  m.eliminated_moves = r.eliminated_moves;
  m.eliminated_zero_idioms = r.eliminated_zero_idioms;
  return m;
}

std::string instantiate_template(const std::string& tmpl, int d, int s) {
  std::string out;
  out.reserve(tmpl.size() + 8);
  for (std::size_t i = 0; i < tmpl.size(); ++i) {
    if (tmpl.compare(i, 3, "{d}") == 0) {
      out += std::to_string(d);
      i += 2;
    } else if (tmpl.compare(i, 3, "{s}") == 0) {
      out += std::to_string(s);
      i += 2;
    } else {
      out += tmpl[i];
    }
  }
  return out;
}

namespace {

asmir::Program build_loop(const std::vector<std::string>& body,
                          const uarch::MachineModel& mm) {
  std::string text;
  for (const auto& line : body) text += line + "\n";
  if (mm.isa() == asmir::Isa::AArch64) {
    text += "subs x9, x9, #1\n";
    text += "b.ne .Loop\n";
  } else {
    text += "subq $1, %r9\n";
    text += "jne .Loop\n";
  }
  return asmir::parse(text, mm.isa());
}

}  // namespace

double measure_inverse_throughput(const std::string& instr_template,
                                  const uarch::MachineModel& mm,
                                  int parallel_copies) {
  std::vector<std::string> body;
  body.reserve(static_cast<std::size_t>(parallel_copies));
  for (int i = 0; i < parallel_copies; ++i) {
    // Independent destinations; shared (constant) sources.
    body.push_back(instantiate_template(instr_template, i, i));
  }
  asmir::Program prog = build_loop(body, mm);
  Measurement m = run(prog, mm);
  return m.cycles_per_iteration / parallel_copies;
}

double measure_latency(const std::string& instr_template,
                       const uarch::MachineModel& mm, int chain_length) {
  std::vector<std::string> body;
  body.reserve(static_cast<std::size_t>(chain_length));
  for (int i = 0; i < chain_length; ++i) {
    int src = i;
    int dst = (i + 1) % chain_length;
    body.push_back(instantiate_template(instr_template, dst, src));
  }
  asmir::Program prog = build_loop(body, mm);
  Measurement m = run(prog, mm);
  return m.cycles_per_iteration / chain_length;
}

}  // namespace incore::exec
