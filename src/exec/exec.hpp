#pragma once
// The execution testbed: the stand-in for running and measuring kernels on
// real Grace / Sapphire Rapids / Genoa silicon.
//
// It wraps the pipeline simulator with per-microarchitecture "silicon"
// configurations: rename-stage eliminations, taken-branch fetch penalties,
// and the cases where the actual hardware beats the documented model values
// (Zen 4's scalar divider early-exit) — exactly the effects the paper calls
// out when its OSACA models mispredict.
//
// It also provides the instruction microbenchmark harness (throughput and
// latency loops) used to regenerate the paper's Table III.

#include <string>

#include "asmir/ir.hpp"
#include "exec/pipeline.hpp"
#include "uarch/model.hpp"

namespace incore::exec {

struct Measurement {
  double cycles_per_iteration = 0.0;
  std::vector<double> port_utilization;
  std::uint64_t backpressure_cycles = 0;
  /// Issue statistics (see PipelineResult): realized per-port busy cycles
  /// per iteration, rename micro-ops per iteration, dispatch width in
  /// effect, and rename-stage elimination counts.  Consumed by the
  /// prediction audit's divergence attribution.
  std::vector<double> port_cycles;
  double uops_per_iteration = 0.0;
  int dispatch_width = 0;
  int eliminated_moves = 0;
  int eliminated_zero_idioms = 0;
};

/// The realistic per-microarchitecture testbed configuration.
[[nodiscard]] PipelineConfig testbed_config(uarch::Micro micro);

/// "Run" a kernel loop on the simulated silicon and measure cycles/iter.
[[nodiscard]] Measurement run(const asmir::Program& prog,
                              const uarch::MachineModel& mm);
[[nodiscard]] Measurement run(const asmir::Program& prog,
                              const uarch::MachineModel& mm,
                              const PipelineConfig& cfg);

// ---------------------------------------------------------------------------
// Instruction microbenchmarks (the ibench / OoO-bench substitute).
// ---------------------------------------------------------------------------

/// Reciprocal throughput in cycles/instruction: a loop of `parallel_copies`
/// independent instances of the instruction (distinct registers).
[[nodiscard]] double measure_inverse_throughput(const std::string& instr_template,
                                                const uarch::MachineModel& mm,
                                                int parallel_copies = 24);

/// Result latency in cycles: a serial chain where each instance consumes the
/// previous destination.
[[nodiscard]] double measure_latency(const std::string& instr_template,
                                     const uarch::MachineModel& mm,
                                     int chain_length = 8);

/// Both templates use "{d}" for the destination register number and "{s}"
/// for the source register number, e.g.
///   "fmla v{d}.2d, v{s}.2d, v30.2d"   (AArch64)
///   "vfmadd231pd %zmm{s}, %zmm30, %zmm{d}"  (x86-64)
[[nodiscard]] std::string instantiate_template(const std::string& tmpl, int d,
                                               int s);

}  // namespace incore::exec
