#include "exec/pipeline.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <deque>
#include <map>
#include <optional>
#include <tuple>

#include "dataflow/dataflow.hpp"
#include "support/error.hpp"

namespace incore::exec {
namespace {

using asmir::Instruction;
using asmir::MemOperand;
using asmir::Program;
using asmir::RegClass;
using asmir::Register;

constexpr double kInf = 1e30;

struct UopSpec {
  uarch::PortMask mask = 0;
  double occupancy = 1.0;  // fractional for sub-cycle divider reciprocals
  int static_port = -1;    // chosen at dispatch when static binding is on
};

struct MemKey {
  std::uint32_t base = 0;
  std::uint32_t index = 0;
  int base_ver = 0;   // versioned by address-register writes: the pointer
  int index_ver = 0;  // bump renames the symbolic location each iteration
  long long disp = 0;
  bool operator<(const MemKey& o) const {
    return std::tie(base, index, base_ver, index_ver, disp) <
           std::tie(o.base, o.index, o.base_ver, o.index_ver, o.disp);
  }
};

using dataflow::is_zero_register;

// Rename-time idiom recognition (zero idioms, eliminable moves) comes from
// the shared dataflow table so the testbed and the static passes can never
// disagree: see dataflow/idioms.hpp.
using dataflow::is_zero_idiom;
using dataflow::is_register_move;

/// Static (per program position) description after model resolution and
/// config transforms.
struct StaticInstr {
  std::vector<UopSpec> uops;
  double latency = 1.0;      // total (load + compute)
  double load_lat = 0.0;     // folded-load component
  double chain_lat = 1.0;    // value-producing component
  bool split_load = false;   // folded load + compute micro-ops
  double inv_tput = 0.0;
  double uop_count = 1.0;
  bool is_load = false;
  bool is_store = false;
  bool is_branch = false;
  bool eliminated_move = false;
  bool zero_idiom = false;
  // Register reads split into address inputs (gate the AGU / issue of
  // memory operations and feed the post-index write-back) and data inputs
  // (a store's data does not gate its address generation).
  std::vector<std::uint32_t> addr_roots;
  std::vector<std::uint32_t> data_roots;
  std::uint32_t acc_root = 0xfffffffeu;  // accumulator input (FMA class)
  double acc_lat = 0.0;
  std::vector<std::uint32_t> write_roots;  // excluding the write-back base
  bool has_writeback = false;
  std::uint32_t wb_root = 0;
  std::optional<MemKey> mkey;
  std::string form;
};

/// Reference to a producing dynamic instruction; `wb` selects its AGU
/// (write-back) result instead of the data result.
struct ProducerRef {
  std::uint64_t id = 0;
  bool wb = false;
};

struct RobEntry {
  int static_idx = 0;
  std::uint64_t dyn_id = 0;
  std::vector<ProducerRef> addr_producers;
  std::vector<ProducerRef> data_producers;
  std::vector<ProducerRef> acc_producers;
  std::vector<UopSpec> uops;             // copies (static_port may be bound)
  bool issued = false;
  double completion = kInf;
  double dispatch_cycle = 0.0;
  double issue_cycle = -1.0;
};

bool has_vector_operand(const Instruction& ins) {
  for (const auto& op : ins.ops) {
    if (op.is_reg() && op.reg().cls == RegClass::Vector) return true;
  }
  return false;
}

}  // namespace

PipelineResult simulate_loop(const Program& prog,
                             const uarch::MachineModel& mm,
                             const PipelineConfig& cfg) {
  PipelineResult result;
  const int n = static_cast<int>(prog.code.size());
  if (n == 0) return result;
  const uarch::CoreResources& res = mm.resources();
  const int port_count = static_cast<int>(mm.port_count());
  const std::uint32_t kFlagsRoot = Register{RegClass::Flags, 0, 1}.root_id();

  // ---- Static preparation ------------------------------------------------
  std::vector<StaticInstr> statics(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Instruction& ins = prog.code[i];
    StaticInstr& s = statics[static_cast<std::size_t>(i)];
    const uarch::Resolved r = mm.resolve(ins);
    s.form = ins.form();
    s.latency = r.latency;
    s.load_lat = r.load_latency;
    s.chain_lat = r.chain_latency;
    s.split_load = r.has_load && (r.latency - r.chain_latency) > 1e-9;
    s.inv_tput = r.inverse_throughput;
    s.uop_count = std::max(1.0, r.uops);
    s.is_load = r.has_load;
    s.is_store = r.has_store;
    s.is_branch = ins.is_branch;

    // Scheduling-table transforms (MCA configuration): the FP inflation
    // applies to the compute component, the load inflation to the load.
    if (has_vector_operand(ins) && !s.is_store) {
      s.chain_lat = s.chain_lat * cfg.fp_latency_scale + cfg.fp_latency_add;
    }
    if (s.is_load) s.load_lat += cfg.load_latency_add;
    if (auto it = cfg.latency_overrides.find(s.form);
        it != cfg.latency_overrides.end()) {
      s.chain_lat = std::max(1.0, it->second - (s.split_load ? s.load_lat : 0.0));
    }
    if (s.is_load && !s.split_load) {
      // Pure loads: the chain latency *is* the load latency.
      s.chain_lat += cfg.load_latency_add;
    }
    s.latency = s.split_load ? s.load_lat + s.chain_lat : s.chain_lat;
    double occupancy_scale = 1.0;
    if (auto it = cfg.tput_overrides.find(s.form);
        it != cfg.tput_overrides.end()) {
      if (s.inv_tput > 0.0) occupancy_scale = it->second / s.inv_tput;
      s.inv_tput = it->second;
    }
    const bool is_fp = has_vector_operand(ins);
    const bool is_mem = s.is_load || s.is_store;
    // Keep only the lowest-numbered alternatives (coarse sched model).
    auto limit_mask = [](uarch::PortMask mask, int limit) {
      if (limit <= 0) return mask;
      uarch::PortMask limited = 0;
      int kept = 0;
      uarch::PortMask rest = mask;
      while (rest && kept < limit) {
        uarch::PortMask low = rest & (~rest + 1);
        limited |= low;
        rest &= ~low;
        ++kept;
      }
      return limited ? limited : mask;
    };
    for (const uarch::PortUse& pu : r.port_uses) {
      double occ = std::max(0.25, pu.cycles * occupancy_scale);
      uarch::PortMask mask = pu.mask;
      if (is_mem) {
        mask = limit_mask(mask, cfg.mem_port_limit);
      } else if (is_fp) {
        mask = limit_mask(mask, cfg.fp_port_limit);
      }
      s.uops.push_back(UopSpec{mask, occ, -1});
    }

    s.zero_idiom = cfg.zero_idiom_elimination && is_zero_idiom(ins);
    s.eliminated_move = cfg.move_elimination && is_register_move(ins);
    if (s.zero_idiom || s.eliminated_move) {
      s.uops.clear();
      s.latency = s.chain_lat = s.load_lat = 0.0;
      s.split_load = false;
      s.inv_tput = 0.0;
    }

    const MemOperand* mem = ins.mem_operand();
    std::uint32_t addr0 = 0, addr1 = 0;
    int n_addr = 0;
    if (mem) {
      if (mem->base && !is_zero_register(prog, *mem->base))
        addr0 = mem->base->root_id(), ++n_addr;
      if (mem->index && !is_zero_register(prog, *mem->index))
        addr1 = mem->index->root_id(), ++n_addr;
    }
    if (cfg.model_accumulator_forwarding && r.accumulator_latency > 0) {
      s.acc_lat = r.accumulator_latency;
      for (const auto& op : ins.ops) {
        if (op.is_reg() && op.read && op.write)
          s.acc_root = op.reg().root_id();
      }
    }
    if (!s.zero_idiom) {
      for (const Register& reg : ins.reads()) {
        if (is_zero_register(prog, reg)) continue;
        const std::uint32_t root = reg.root_id();
        if (n_addr >= 1 && root == addr0) continue;  // handled below
        if (n_addr >= 2 && root == addr1) continue;
        if (s.acc_lat > 0 && root == s.acc_root) continue;  // handled below
        s.data_roots.push_back(root);
      }
      if (s.acc_lat > 0 && s.acc_root != 0xfffffffeu) {
        // Tracked separately so the consumer can issue early.
      }
      if (ins.reads_flags) s.data_roots.push_back(kFlagsRoot);
      if (n_addr >= 1) s.addr_roots.push_back(addr0);
      if (n_addr >= 2) s.addr_roots.push_back(addr1);
    }
    if (mem && mem->base_writeback && mem->base &&
        !is_zero_register(prog, *mem->base)) {
      s.has_writeback = true;
      s.wb_root = mem->base->root_id();
    }
    for (const Register& reg : ins.writes()) {
      if (is_zero_register(prog, reg)) continue;
      const std::uint32_t root = reg.root_id();
      if (s.has_writeback && root == s.wb_root) continue;  // AGU result
      s.write_roots.push_back(root);
    }
    if (mem && !mem->is_gather && (s.is_load || s.is_store)) {
      MemKey k;
      k.base = mem->base ? mem->base->root_id() : 0xffffffffu;
      k.index = mem->index ? mem->index->root_id() : 0xfffffffeu;
      k.disp = mem->displacement;
      s.mkey = k;
    }
  }

  result.dispatch_width = cfg.dispatch_width_override > 0
                              ? cfg.dispatch_width_override
                              : res.rename_width;
  for (const StaticInstr& s : statics) {
    result.uops_per_iteration += s.uop_count;
    if (s.eliminated_move) ++result.eliminated_moves;
    if (s.zero_idiom) ++result.eliminated_zero_idioms;
  }

  // ---- Dynamic state -------------------------------------------------------
  const int total_iters = cfg.warmup_iterations + cfg.iterations;
  const std::uint64_t total_instrs =
      static_cast<std::uint64_t>(total_iters) * static_cast<std::uint64_t>(n);

  std::vector<double> comp_time(total_instrs, kInf);  // by dynamic id
  std::vector<double> wb_time(total_instrs, kInf);    // AGU write-back result
  std::deque<RobEntry> rob;
  std::map<std::uint32_t, ProducerRef> last_writer;
  std::map<MemKey, std::uint64_t> last_store;
  std::map<std::uint32_t, int> reg_version;
  auto versioned_key = [&reg_version](const MemKey& raw) {
    MemKey k = raw;
    if (k.base != 0xffffffffu) {
      auto it = reg_version.find(k.base);
      k.base_ver = it == reg_version.end() ? 0 : it->second;
    }
    if (k.index != 0xfffffffeu) {
      auto it = reg_version.find(k.index);
      k.index_ver = it == reg_version.end() ? 0 : it->second;
    }
    return k;
  };

  std::vector<double> port_free(static_cast<std::size_t>(port_count), 0.0);
  std::vector<double> port_busy_measured(static_cast<std::size_t>(port_count),
                                         0.0);
  std::vector<double> static_use(static_cast<std::size_t>(port_count), 0.0);
  std::unordered_map<std::string, double> form_next;

  std::uint64_t next_fetch_id = 0;
  std::uint64_t retired = 0;
  double fetch_cycle = 0.0;
  int fetch_slots = 0;
  double inflight_uops = 0.0;
  int inflight_loads = 0;
  int inflight_stores = 0;

  double measure_start = -1.0;
  double measure_end_marker = -1.0;
  const std::uint64_t measure_from =
      static_cast<std::uint64_t>(cfg.warmup_iterations) *
      static_cast<std::uint64_t>(n);
  // End marker: the same body position (first instruction), K iterations
  // later, so the window length is exactly K steady-state iterations.
  const std::uint64_t measure_to =
      static_cast<std::uint64_t>(total_iters - 1) *
      static_cast<std::uint64_t>(n);
  const int measured_iters = std::max(1, cfg.iterations - 1);

  // Fetch queue: fetch_q[i] is the fetch time of dynamic instruction
  // (pending_head_id + i).  Invariant: next_fetch_id == pending_head_id +
  // fetch_q.size().
  std::deque<double> fetch_q;
  std::uint64_t pending_head_id = 0;

  auto fetch_more = [&](std::size_t want) {
    while (fetch_q.size() < want && next_fetch_id < total_instrs) {
      int idx = static_cast<int>(next_fetch_id % n);
      fetch_q.push_back(fetch_cycle);
      ++fetch_slots;
      if (fetch_slots >= res.decode_width) {
        fetch_cycle += 1.0;
        fetch_slots = 0;
      }
      const StaticInstr& s = statics[static_cast<std::size_t>(idx)];
      if (s.is_branch && idx == n - 1 && cfg.taken_branch_bubble > 0.0) {
        // The taken branch ends the current fetch group; the redirected
        // fetch resumes after the (average) redirect bubble.
        fetch_cycle += cfg.taken_branch_bubble;
        fetch_slots = 0;
      }
      ++next_fetch_id;
    }
  };

  const std::uint64_t kMaxCycles = 30'000'000ULL;
  std::uint64_t cycle = 0;
  for (; cycle < kMaxCycles && retired < total_instrs; ++cycle) {
    const double now = static_cast<double>(cycle);

    // ---- Retire (in order) ----
    int retire_budget = res.retire_width;
    while (!rob.empty() && retire_budget > 0) {
      RobEntry& head = rob.front();
      if (!head.issued || head.completion > now) break;
      const StaticInstr& s = statics[static_cast<std::size_t>(head.static_idx)];
      inflight_uops -= s.uop_count;
      if (s.is_load) --inflight_loads;
      if (s.is_store) --inflight_stores;
      if (head.dyn_id == measure_from && measure_start < 0.0)
        measure_start = now;
      if (head.dyn_id == measure_to && measure_end_marker < 0.0)
        measure_end_marker = now;
      if (cfg.timeline_iterations > 0 &&
          head.dyn_id < static_cast<std::uint64_t>(cfg.timeline_iterations) *
                            static_cast<std::uint64_t>(n)) {
        TimelineEvent ev;
        ev.iteration = static_cast<int>(head.dyn_id / n);
        ev.index = static_cast<int>(head.dyn_id % n);
        ev.dispatch = head.dispatch_cycle;
        ev.issue = head.issue_cycle >= 0 ? head.issue_cycle
                                         : head.dispatch_cycle;
        ev.complete = head.completion;
        ev.retire = now;
        result.timeline.push_back(ev);
      }
      ++retired;
      --retire_budget;
      rob.pop_front();
    }
    if (retired >= total_instrs) break;

    // ---- Issue (oldest-first among ready, within the scheduler window) ----
    int window = res.scheduler_size;
    for (RobEntry& e : rob) {
      if (window <= 0) break;
      if (e.issued) continue;
      --window;
      const StaticInstr& s = statics[static_cast<std::size_t>(e.static_idx)];
      auto time_of = [&](const ProducerRef& p) {
        return p.wb ? wb_time[p.id] : comp_time[p.id];
      };
      // Eliminated at rename: completes as soon as producers complete.
      if (s.zero_idiom || s.eliminated_move) {
        double ready = e.dispatch_cycle;
        bool ok = true;
        for (const ProducerRef& p : e.data_producers) {
          if (time_of(p) >= kInf) {
            ok = false;
            break;
          }
          ready = std::max(ready, time_of(p));
        }
        if (ok && ready <= now) {
          e.issued = true;
          e.issue_cycle = now;
          e.completion = std::max(ready, e.dispatch_cycle);
          comp_time[e.dyn_id] = e.completion;
        }
        continue;
      }
      // Address inputs always gate issue.
      bool ready = true;
      for (const ProducerRef& p : e.addr_producers) {
        if (time_of(p) > now) {
          ready = false;
          break;
        }
      }
      // Data inputs gate issue, except for stores (the store-address
      // micro-op proceeds without the data) and folded load+compute
      // instructions (the load micro-op issues ahead; the compute waits for
      // both the loaded value and the register inputs).  LLVM-MCA style
      // models gate the whole instruction on all operands instead.
      const bool pure_store =
          cfg.store_address_split && s.is_store && !s.is_load;
      const bool early_issue =
          pure_store || (s.split_load && cfg.split_folded_loads);
      double data_ready_time = 0.0;
      if (early_issue) {
        for (const ProducerRef& p : e.data_producers) {
          double t = time_of(p);
          if (t >= kInf && !pure_store) {
            ready = false;  // folded compute needs a known data time
            break;
          }
          data_ready_time = std::max(data_ready_time, t);
        }
      } else {
        for (const ProducerRef& p : e.data_producers) {
          if (time_of(p) > now) {
            ready = false;
            break;
          }
        }
      }
      // Accumulator inputs with late forwarding: their producers must have
      // issued (known completion), but the value may arrive after issue.
      double acc_ready = 0.0;
      for (const ProducerRef& p : e.acc_producers) {
        double t = time_of(p);
        if (t >= kInf) ready = false;
        acc_ready = std::max(acc_ready, t);
      }
      if (!ready) continue;
      // Form-level serialization (non-pipelined units, gathers).  The unit
      // becomes available mid-cycle; an issue in the cycle during which it
      // frees preserves fractional reciprocals exactly.
      if (s.inv_tput > 1.25) {
        auto it = form_next.find(s.form);
        if (it != form_next.end() && it->second >= now + 1.0) continue;
      }
      // Port availability.
      std::vector<int> chosen(e.uops.size(), -1);
      bool all_free = true;
      // Tentative reservation within this cycle so two uops of the same
      // instruction do not pick the same port.
      std::vector<char> taken(static_cast<std::size_t>(port_count), 0);
      for (std::size_t u = 0; u < e.uops.size(); ++u) {
        const UopSpec& uop = e.uops[u];
        int best = -1;
        if (uop.static_port >= 0) {
          if (port_free[static_cast<std::size_t>(uop.static_port)] <
                  now + 1.0 &&
              !taken[static_cast<std::size_t>(uop.static_port)])
            best = uop.static_port;
        } else {
          double best_free = kInf;
          uarch::PortMask mask = uop.mask;
          while (mask) {
            int p = std::countr_zero(mask);
            mask &= mask - 1;
            if (taken[static_cast<std::size_t>(p)]) continue;
            if (port_free[static_cast<std::size_t>(p)] < now + 1.0) {
              // Prefer the port that has been idle longest (load spreading).
              if (port_free[static_cast<std::size_t>(p)] < best_free) {
                best_free = port_free[static_cast<std::size_t>(p)];
                best = p;
              }
            }
          }
        }
        if (best < 0) {
          all_free = false;
          break;
        }
        chosen[u] = best;
        taken[static_cast<std::size_t>(best)] = 1;
      }
      if (!all_free) continue;
      // Commit the issue.
      for (std::size_t u = 0; u < e.uops.size(); ++u) {
        int p = chosen[u];
        double occ = e.uops[u].occupancy;
        // Accumulate from the later of "now" and the current reservation so
        // fractional occupancies serialize exactly.
        port_free[static_cast<std::size_t>(p)] =
            std::max(port_free[static_cast<std::size_t>(p)],
                     static_cast<double>(now)) +
            occ;
        if (measure_start >= 0.0)
          port_busy_measured[static_cast<std::size_t>(p)] += occ;
      }
      if (s.inv_tput > 1.25) {
        double& next = form_next[s.form];
        next = std::max(next, static_cast<double>(now)) + s.inv_tput;
      }
      e.issued = true;
      e.issue_cycle = now;
      if (s.split_load && cfg.split_folded_loads && !pure_store) {
        // Folded load + compute: the load issues now; the compute starts
        // when both the loaded value and the register inputs are there.
        e.completion = std::max(now + s.load_lat, data_ready_time) +
                       std::max(1.0, s.chain_lat);
      } else {
        e.completion = now + std::max(1.0, s.latency);
      }
      if (!e.acc_producers.empty()) {
        e.completion = std::max(e.completion, acc_ready + s.acc_lat);
      }
      if (pure_store) {
        // Completion (visible to forwarding consumers and retirement) also
        // waits for the store data; resolved lazily below once known.
        double data_ready = 0.0;
        bool known = true;
        for (const ProducerRef& p : e.data_producers) {
          double t = time_of(p);
          if (t >= kInf) known = false;
          data_ready = std::max(data_ready, t);
        }
        if (known) {
          e.completion = std::max(e.completion, data_ready + 1.0);
        } else {
          e.completion = kInf;  // data producer not yet issued
        }
      }
      comp_time[e.dyn_id] = e.completion;
      if (s.has_writeback) wb_time[e.dyn_id] = now + 1.0;
    }

    // Resolve store completions whose data producers have issued since.
    for (RobEntry& e : rob) {
      if (!e.issued || e.completion < kInf) continue;
      const StaticInstr& s = statics[static_cast<std::size_t>(e.static_idx)];
      if (!(s.is_store && !s.is_load)) continue;
      double data_ready = 0.0;
      bool known = true;
      for (const ProducerRef& p : e.data_producers) {
        double t = p.wb ? wb_time[p.id] : comp_time[p.id];
        if (t >= kInf) known = false;
        data_ready = std::max(data_ready, t);
      }
      if (known) {
        e.completion = std::max(now + 1.0, data_ready + 1.0);
        comp_time[e.dyn_id] = e.completion;
      }
    }

    // ---- Dispatch / rename ----
    double rename_budget = cfg.dispatch_width_override > 0
                               ? cfg.dispatch_width_override
                               : res.rename_width;
    fetch_more(static_cast<std::size_t>(res.decode_width) * 4);
    bool stalled = false;
    while (rename_budget > 0.0 && pending_head_id < total_instrs) {
      if (fetch_q.empty()) fetch_more(1);
      if (fetch_q.empty()) break;
      if (fetch_q.front() > now) break;
      int idx = static_cast<int>(pending_head_id % n);
      const StaticInstr& s = statics[static_cast<std::size_t>(idx)];
      if (inflight_uops + s.uop_count > res.rob_size ||
          (s.is_load && inflight_loads >= res.load_queue) ||
          (s.is_store && inflight_stores >= res.store_queue)) {
        stalled = true;
        break;
      }
      RobEntry e;
      e.static_idx = idx;
      e.dyn_id = pending_head_id;
      e.dispatch_cycle = now;
      e.uops = s.uops;
      if (!cfg.dynamic_port_selection) {
        // LLVM-MCA style: bind each uop to the least-used port now.
        for (UopSpec& uop : e.uops) {
          int best = -1;
          double best_use = kInf;
          uarch::PortMask mask = uop.mask;
          while (mask) {
            int p = std::countr_zero(mask);
            mask &= mask - 1;
            if (static_use[static_cast<std::size_t>(p)] < best_use) {
              best_use = static_use[static_cast<std::size_t>(p)];
              best = p;
            }
          }
          uop.static_port = best;
          if (best >= 0)
            static_use[static_cast<std::size_t>(best)] += uop.occupancy;
        }
      }
      if (!s.zero_idiom) {
        for (std::uint32_t root : s.addr_roots) {
          auto it = last_writer.find(root);
          if (it != last_writer.end()) e.addr_producers.push_back(it->second);
        }
        for (std::uint32_t root : s.data_roots) {
          auto it = last_writer.find(root);
          if (it != last_writer.end()) e.data_producers.push_back(it->second);
        }
        if (s.acc_lat > 0 && s.acc_root != 0xfffffffeu) {
          auto it = last_writer.find(s.acc_root);
          if (it != last_writer.end()) e.acc_producers.push_back(it->second);
        }
        if (s.is_load && s.mkey) {
          auto it = last_store.find(versioned_key(*s.mkey));
          if (it != last_store.end())
            e.data_producers.push_back(ProducerRef{it->second, false});
        }
      }
      if (s.is_store && s.mkey)
        last_store[versioned_key(*s.mkey)] = pending_head_id;
      for (std::uint32_t root : s.write_roots) {
        last_writer[root] = ProducerRef{pending_head_id, false};
        ++reg_version[root];
      }
      if (s.has_writeback) {
        last_writer[s.wb_root] = ProducerRef{pending_head_id, true};
        ++reg_version[s.wb_root];
      }

      inflight_uops += s.uop_count;
      if (s.is_load) ++inflight_loads;
      if (s.is_store) ++inflight_stores;
      rob.push_back(std::move(e));
      rename_budget -= s.uop_count;
      ++pending_head_id;
      fetch_q.pop_front();
    }
    if (stalled && measure_start >= 0.0) ++result.backpressure_cycles;
  }

  double measure_end =
      measure_end_marker >= 0.0 ? measure_end_marker : static_cast<double>(cycle);
  result.total_cycles = cycle;
  result.measured_iterations = measured_iters;
  if (measure_start < 0.0) measure_start = 0.0;
  result.cycles_per_iteration =
      (measure_end - measure_start) / measured_iters;
  result.port_utilization.assign(static_cast<std::size_t>(port_count), 0.0);
  result.port_cycles.assign(static_cast<std::size_t>(port_count), 0.0);
  double window_cycles = std::max(1.0, measure_end - measure_start);
  for (int p = 0; p < port_count; ++p) {
    result.port_utilization[static_cast<std::size_t>(p)] =
        port_busy_measured[static_cast<std::size_t>(p)] / window_cycles;
    result.port_cycles[static_cast<std::size_t>(p)] =
        port_busy_measured[static_cast<std::size_t>(p)] / measured_iters;
  }
  return result;
}

}  // namespace incore::exec

namespace incore::exec {

std::string render_timeline(const std::vector<TimelineEvent>& events,
                            const asmir::Program& prog) {
  if (events.empty()) return "";
  double max_t = 0;
  for (const auto& e : events) max_t = std::max(max_t, e.retire);
  const int width = std::min(100, static_cast<int>(max_t) + 1);

  std::string out = "Timeline (D dispatch, E execute, R retire):\n";
  // Column ruler every 10 cycles.
  out += "                ";
  for (int t = 0; t < width; ++t)
    out += (t % 10 == 0) ? ('0' + (t / 10) % 10) : ' ';
  out += '\n';
  for (const auto& e : events) {
    char row[128];
    std::snprintf(row, sizeof(row), "[%d,%2d]         ", e.iteration,
                  e.index);
    std::string line(row);
    line.resize(16, ' ');
    std::string lane(static_cast<std::size_t>(width), ' ');
    auto clampi = [&](double v) {
      return std::min(width - 1, std::max(0, static_cast<int>(v)));
    };
    int d = clampi(e.dispatch);
    int i = clampi(e.issue);
    int c = clampi(e.complete);
    int r = clampi(e.retire);
    for (int t = d; t <= r; ++t) lane[static_cast<std::size_t>(t)] = '.';
    lane[static_cast<std::size_t>(d)] = 'D';
    for (int t = i; t < c && t < width; ++t)
      if (lane[static_cast<std::size_t>(t)] == '.')
        lane[static_cast<std::size_t>(t)] = 'e';
    if (i <= c) lane[static_cast<std::size_t>(i)] = 'E';
    lane[static_cast<std::size_t>(r)] = 'R';
    line += lane;
    const auto idx = static_cast<std::size_t>(e.index);
    if (idx < prog.code.size()) {
      line += "  ";
      line += prog.code[idx].raw;
    }
    out += line + '\n';
  }
  return out;
}

}  // namespace incore::exec
