#pragma once
// Cycle-level out-of-order pipeline simulator.
//
// This engine serves two roles:
//  * configured with realistic policies (dynamic port selection at issue,
//    move elimination, zero-idiom elimination, taken-branch fetch bubble,
//    per-form hardware throughput overrides) it is the *execution testbed*
//    that substitutes for the paper's measurements on real Grace / Sapphire
//    Rapids / Genoa silicon;
//  * configured with LLVM-MCA-like policies (static resource binding chosen
//    at dispatch, no rename eliminations, no branch modeling, transformed
//    scheduling tables) it reproduces the comparator model of the paper.
//
// The simulated microarchitecture state per cycle: fetch/decode bandwidth,
// rename/dispatch bandwidth into a finite ROB and scheduler window, greedy
// oldest-first issue onto ports with multi-cycle occupancy (non-pipelined
// units), a load/store queue, and in-order retirement.

#include <string>
#include <unordered_map>
#include <vector>

#include "asmir/ir.hpp"
#include "uarch/model.hpp"

namespace incore::exec {

struct PipelineConfig {
  /// Iterations to simulate after warmup; cycles/iter is averaged over these.
  int iterations = 200;
  int warmup_iterations = 50;

  /// Renamer optimizations (real cores have them; LLVM-MCA's default models
  /// historically did not).
  bool move_elimination = true;
  bool zero_idiom_elimination = true;

  /// Port for each micro-op chosen dynamically at issue (testbed) or bound
  /// statically at dispatch by cumulative-use counters (LLVM-MCA style).
  bool dynamic_port_selection = true;

  /// Fetch-redirect penalty paid once per taken loop-back branch, in cycles.
  /// Zero disables branch modeling entirely (LLVM-MCA assumes a fully
  /// unrolled instruction stream).
  double taken_branch_bubble = 1.0;

  /// Hardware-measured reciprocal throughput per instruction form where the
  /// silicon beats the documented/model value (e.g. Zen 4's scalar divider).
  std::unordered_map<std::string, double> tput_overrides;
  /// Hardware-measured latency overrides.
  std::unordered_map<std::string, double> latency_overrides;

  /// Scheduling-table transform (used by the MCA configuration): scale and
  /// bias applied to FP/vector latencies, and an extra micro-op inflation
  /// factor for vector instructions.
  double fp_latency_scale = 1.0;
  double fp_latency_add = 0.0;
  double load_latency_add = 0.0;

  /// Real pipelines issue the store-address micro-op (and the post-index
  /// write-back) without waiting for the store data; LLVM-MCA's model gates
  /// the whole instruction on all operands.
  bool store_address_split = true;

  /// Folded load+compute instructions issue their load micro-op ahead of
  /// the compute's register inputs (LLVM models this via ReadAdvance, so
  /// the MCA configuration keeps it too).
  bool split_folded_loads = true;

  /// Restrict every FP/vector micro-op to at most this many alternative
  /// ports (0 = unlimited).  Models LLVM's coarse resource groups for
  /// microarchitectures it describes generically (Neoverse V2).
  int fp_port_limit = 0;

  /// Like fp_port_limit but for the micro-ops of load/store instructions
  /// (generic models describe fewer LD/ST pipes than V2's three).
  int mem_port_limit = 0;

  /// Override the rename/dispatch width (0 = use the machine's).  LLVM
  /// scheduling models advertise an IssueWidth that is often narrower than
  /// the real rename stage.
  int dispatch_width_override = 0;

  /// Record per-instruction pipeline events for the first N iterations
  /// (0 = off).  Enables the timeline view.
  int timeline_iterations = 0;

  /// Honor late accumulator forwarding of FMA-class instructions (the
  /// dependent accumulate can start before its accumulator input is ready).
  /// Off by default to match the paper's measurement calibration.
  bool model_accumulator_forwarding = false;
};

/// One dynamic instruction's trip through the pipeline.
struct TimelineEvent {
  int iteration = 0;
  int index = 0;          // position within the loop body
  double dispatch = 0;
  double issue = 0;
  double complete = 0;
  double retire = 0;
};

struct PipelineResult {
  double cycles_per_iteration = 0.0;
  std::uint64_t total_cycles = 0;
  int measured_iterations = 0;
  /// Port busy fraction during the measured window (indexed like the model).
  std::vector<double> port_utilization;
  /// Dispatch stalls due to a full ROB / scheduler (cycles).
  std::uint64_t backpressure_cycles = 0;
  /// Per-port busy cycles per measured iteration (absolute counterpart of
  /// `port_utilization`; the realized port histogram the audit diffs).
  std::vector<double> port_cycles;
  /// Issue statistics for one loop body under this configuration: rename
  /// micro-ops per iteration (rename-eliminated instructions still consume
  /// rename bandwidth), the dispatch width in effect, and how many body
  /// instructions the renamer eliminated.
  double uops_per_iteration = 0.0;
  int dispatch_width = 0;
  int eliminated_moves = 0;
  int eliminated_zero_idioms = 0;
  /// Recorded when PipelineConfig::timeline_iterations > 0.
  std::vector<TimelineEvent> timeline;
};

/// Renders recorded events as an llvm-mca-style ASCII timeline:
/// D = dispatch, E = executing, R = retired.
[[nodiscard]] std::string render_timeline(
    const std::vector<TimelineEvent>& events, const asmir::Program& prog);

/// Simulate `prog` as an infinite loop on the machine `mm`.
/// Throws support::UnknownInstruction if the model lacks a required form.
[[nodiscard]] PipelineResult simulate_loop(const asmir::Program& prog,
                                           const uarch::MachineModel& mm,
                                           const PipelineConfig& cfg);

}  // namespace incore::exec
