#pragma once
// Roofline model with in-core-derived ceilings.
//
// The paper motivates its in-core models as "a building block for
// node-wide performance models (e.g., a more realistic horizontal ceiling
// in the Roofline Model)".  This module implements that: the classic
// Roofline bound min(AI * BW, P_peak) plus the kernel-specific ceiling
// obtained from the in-core model (port pressure and recurrences of the
// *actual* loop body instead of the marketing peak).

#include "analysis/analyze.hpp"
#include "kernels/kernels.hpp"
#include "uarch/model.hpp"

namespace incore::roofline {

/// Machine ceilings, full socket.
struct Ceilings {
  double peak_gflops = 0;       // marketing DP peak at sustained clock
  double mem_bw_gbs = 0;        // measured socket bandwidth
  double ridge_intensity() const {
    return mem_bw_gbs > 0 ? peak_gflops / mem_bw_gbs : 0;
  }
};

[[nodiscard]] Ceilings ceilings(uarch::Micro micro);

/// One kernel variant placed on the roofline.
struct Placement {
  double arithmetic_intensity = 0;  // flop / byte (incl. write-allocate)
  double classic_bound_gflops = 0;  // min(AI * BW, peak), full socket
  double incore_ceiling_gflops = 0; // in-core model ceiling, full socket
  double bound_gflops = 0;          // min(classic, in-core)
  bool memory_bound = false;
};

[[nodiscard]] Placement place(const kernels::Variant& v);

/// Per-core in-core ceiling in Gflop/s (flops per iteration over predicted
/// cycles, at the sustained heavy-vector clock).
[[nodiscard]] double in_core_ceiling_per_core(const kernels::Variant& v);

}  // namespace incore::roofline
