#include "roofline/roofline.hpp"

#include <algorithm>

#include "memsim/memsim.hpp"
#include "power/power.hpp"

namespace incore::roofline {

Ceilings ceilings(uarch::Micro micro) {
  Ceilings c;
  c.peak_gflops = power::peak_flops(micro).achievable_tflops * 1e3;
  memsim::System sys(memsim::preset(micro));
  c.mem_bw_gbs = sys.achieved_bw(sys.config().cores, 2.0 / 3.0);
  return c;
}

double in_core_ceiling_per_core(const kernels::Variant& v) {
  auto g = kernels::generate(v);
  const auto& mm = uarch::machine(v.target);
  analysis::Report rep = analysis::analyze(g.program, mm);
  const kernels::KernelInfo& ki = kernels::info(v.kernel);
  const double flops_per_iter =
      ki.flops_per_element * g.elements_per_iteration;
  if (rep.predicted_cycles() <= 0) return 0;
  // Sustained clock for heavy vector code on this machine.
  power::IsaClass isa = v.target == uarch::Micro::NeoverseV2
                            ? power::IsaClass::Sve
                            : power::IsaClass::Avx512;
  const double f_ghz = power::sustained_frequency(
      v.target, isa, power::chip(v.target).cores);
  return flops_per_iter / rep.predicted_cycles() * f_ghz;
}

Placement place(const kernels::Variant& v) {
  Placement p;
  const kernels::KernelInfo& ki = kernels::info(v.kernel);
  // Bytes per element including the write-allocate (unless evaded).
  const bool wa_evaded = v.target == uarch::Micro::NeoverseV2;
  double bytes_per_elem =
      8.0 * (ki.loads_per_element + ki.stores_per_element +
             (wa_evaded ? 0 : ki.stores_per_element));
  if (bytes_per_elem <= 0) bytes_per_elem = 8.0;  // store-only kernels
  p.arithmetic_intensity = ki.flops_per_element / bytes_per_elem;

  Ceilings c = ceilings(v.target);
  p.classic_bound_gflops =
      std::min(p.arithmetic_intensity * c.mem_bw_gbs, c.peak_gflops);
  const int cores = power::chip(v.target).cores;
  p.incore_ceiling_gflops = in_core_ceiling_per_core(v) * cores;
  p.bound_gflops = std::min(p.classic_bound_gflops, p.incore_ceiling_gflops);
  p.memory_bound = p.arithmetic_intensity * c.mem_bw_gbs <
                   std::min(c.peak_gflops, p.incore_ceiling_gflops);
  return p;
}

}  // namespace incore::roofline
