// Intel-syntax x86 support.
//
// Compilers emit AT&T by default, but disassemblers, Intel compilers with
// -masm=intel, and most vendor documentation use Intel syntax
// (`vaddpd zmm0, zmm1, zmm2`, `mov rax, qword ptr [rbx+rcx*8+16]`).
// Rather than a second full parser, Intel lines are translated to AT&T and
// fed through the existing front end: operand order reversed, registers
// prefixed with '%', immediates with '$', memory references rewritten as
// disp(base,index,scale), and size keywords dropped (operand widths carry
// the information in the IR).  `asmir::parse` auto-detects the syntax.

#include <cctype>
#include <string>
#include <unordered_set>

#include "asmir/parser.hpp"
#include "support/strings.hpp"

namespace incore::asmir {

using support::format;
using support::split_toplevel;
using support::to_lower;
using support::trim;

namespace detail {
namespace {

const std::unordered_set<std::string>& register_names() {
  static const std::unordered_set<std::string> names = [] {
    std::unordered_set<std::string> n = {"rax", "rbx", "rcx", "rdx", "rsi",
                                         "rdi", "rbp", "rsp", "rip", "eax",
                                         "ebx", "ecx", "edx", "esi", "edi",
                                         "ebp", "esp"};
    for (int i = 8; i <= 15; ++i) {
      n.insert("r" + std::to_string(i));
      n.insert("r" + std::to_string(i) + "d");
    }
    for (int i = 0; i <= 31; ++i) {
      n.insert("xmm" + std::to_string(i));
      n.insert("ymm" + std::to_string(i));
      n.insert("zmm" + std::to_string(i));
    }
    for (int i = 0; i <= 7; ++i) n.insert("k" + std::to_string(i));
    return n;
  }();
  return names;
}

bool is_register(const std::string& tok) {
  return register_names().contains(to_lower(tok));
}

/// "[rbx+rcx*8+16]" / "[rip+sym]" / "[rax]" -> AT&T "16(%rbx,%rcx,8)".
std::string translate_mem(std::string_view inner) {
  std::string base, index;
  int scale = 1;
  long long disp = 0;
  // Split on '+' and '-' at top level, keeping the sign for displacements.
  std::string token;
  std::vector<std::pair<char, std::string>> terms;  // sign, text
  char sign = '+';
  for (std::size_t i = 0; i <= inner.size(); ++i) {
    if (i == inner.size() || inner[i] == '+' || inner[i] == '-') {
      if (!token.empty()) terms.push_back({sign, token});
      token.clear();
      if (i < inner.size()) sign = inner[i];
    } else {
      token += inner[i];
    }
  }
  for (auto& [sg, term0] : terms) {
    std::string term(trim(term0));
    auto star = term.find('*');
    if (star != std::string::npos) {
      std::string r(trim(std::string_view(term).substr(0, star)));
      std::string s(trim(std::string_view(term).substr(star + 1)));
      if (!is_register(r)) std::swap(r, s);  // "8*rcx" form
      index = r;
      long long sv = 1;
      (void)support::parse_int(s, sv);
      scale = static_cast<int>(sv);
    } else if (is_register(term)) {
      if (base.empty()) {
        base = term;
      } else {
        index = term;  // second bare register is the index (scale 1)
      }
    } else {
      long long v = 0;
      if (support::parse_int(term, v)) disp += (sg == '-' ? -v : v);
      // Symbolic displacements are dropped (as in the AT&T front end).
    }
  }
  std::string out;
  if (disp != 0) out += format("%lld", disp);
  out += '(';
  if (!base.empty()) out += "%" + to_lower(base);
  if (!index.empty()) out += format(",%%%s,%d", to_lower(index).c_str(), scale);
  out += ')';
  return out;
}

/// Strip "qword ptr" / "ymmword ptr" / ... prefixes from an operand.
std::string_view strip_ptr_keyword(std::string_view op) {
  static const char* kSizes[] = {"byte",   "word",    "dword", "qword",
                                 "xmmword", "ymmword", "zmmword", "tbyte",
                                 "oword"};
  op = trim(op);
  for (const char* s : kSizes) {
    std::string low = to_lower(op.substr(0, std::string(s).size()));
    if (low == s) {
      op = trim(op.substr(std::string(s).size()));
      std::string p = to_lower(op.substr(0, 3));
      if (p == "ptr") op = trim(op.substr(3));
      break;
    }
  }
  return op;
}

}  // namespace

std::string intel_to_att_line(std::string_view line) {
  line = trim(line);
  if (line.empty()) return std::string(line);
  std::size_t sp = line.find_first_of(" \t");
  std::string mnem =
      std::string(sp == std::string_view::npos ? line : line.substr(0, sp));
  std::string_view rest =
      sp == std::string_view::npos ? std::string_view{} : trim(line.substr(sp));

  std::vector<std::string> ops;
  if (!rest.empty()) {
    for (std::string_view op : split_toplevel(rest, ',')) {
      op = strip_ptr_keyword(trim(op));
      std::string out;
      // Opmask annotations {k1}{z} stay attached and get '%' on the k reg.
      std::string ann;
      while (!op.empty() && op.back() == '}') {
        auto lb = op.rfind('{');
        if (lb == std::string_view::npos) break;
        std::string inner(trim(op.substr(lb + 1, op.size() - lb - 2)));
        if (is_register(inner)) {
          ann = "{%" + to_lower(inner) + "}" + ann;
        } else {
          ann = "{" + inner + "}" + ann;
        }
        op = trim(op.substr(0, lb));
      }
      if (!op.empty() && op.front() == '[') {
        out = translate_mem(op.substr(1, op.size() - 2));
      } else if (is_register(std::string(op))) {
        out = "%" + to_lower(std::string(op));
      } else {
        long long v = 0;
        if (support::parse_int(op, v)) {
          out = format("$%lld", v);
        } else {
          out = std::string(op);  // label
        }
      }
      ops.push_back(out + ann);
    }
  }
  // Intel: destination first; AT&T: destination last.
  std::string out = mnem;
  for (std::size_t i = ops.size(); i-- > 0;) {
    out += (i + 1 == ops.size()) ? " " : ", ";
    out += ops[i];
  }
  return out;
}

bool looks_like_intel_syntax(std::string_view text) {
  // AT&T uses '%' register prefixes on every register mention.
  bool any_instr = false;
  for (std::string_view line : support::split_lines(text)) {
    if (auto pos = line.find('#'); pos != std::string_view::npos)
      line = line.substr(0, pos);
    if (auto pos = line.find(';'); pos != std::string_view::npos)
      line = line.substr(0, pos);
    line = trim(line);
    if (line.empty() || is_label_line(line) || is_directive_line(line))
      continue;
    any_instr = true;
    if (line.find('%') != std::string_view::npos) return false;
  }
  return any_instr;
}

Program parse_x86_intel(std::string_view text) {
  std::string att;
  for (std::string_view line : support::split_lines(text)) {
    if (auto pos = line.find(';'); pos != std::string_view::npos)
      line = line.substr(0, pos);  // Intel comment style
    if (auto pos = line.find('#'); pos != std::string_view::npos)
      line = line.substr(0, pos);
    line = trim(line);
    if (line.empty() || is_label_line(line) || is_directive_line(line)) {
      continue;
    }
    att += intel_to_att_line(line);
    att += '\n';
  }
  return parse_x86(att);
}

}  // namespace detail
}  // namespace incore::asmir
