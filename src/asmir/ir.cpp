#include "asmir/ir.hpp"

#include "support/strings.hpp"

namespace incore::asmir {

using support::format;

const char* to_string(Isa isa) {
  switch (isa) {
    case Isa::X86_64: return "x86-64";
    case Isa::AArch64: return "aarch64";
  }
  return "?";
}

std::string Register::name(Isa isa) const {
  switch (cls) {
    case RegClass::Gpr: {
      if (isa == Isa::AArch64)
        return format("%c%d", width_bits == 32 ? 'w' : 'x', index);
      static const char* k64[] = {"rax", "rcx", "rdx", "rbx", "rsi", "rdi",
                                  "rbp", "r7?", "r8",  "r9",  "r10", "r11",
                                  "r12", "r13", "r14", "r15"};
      static const char* k32[] = {"eax",  "ecx",  "edx",  "ebx",  "esi",
                                  "edi",  "ebp",  "e7?",  "r8d",  "r9d",
                                  "r10d", "r11d", "r12d", "r13d", "r14d",
                                  "r15d"};
      return width_bits == 32 ? k32[index & 15] : k64[index & 15];
    }
    case RegClass::Vector:
      if (isa == Isa::AArch64) {
        if (width_bits <= 64) return format("d%d", index);
        return format("v%d", index);
      }
      if (width_bits == 512) return format("zmm%d", index);
      if (width_bits == 256) return format("ymm%d", index);
      return format("xmm%d", index);
    case RegClass::Predicate: return format("p%d", index);
    case RegClass::Mask: return format("k%d", index);
    case RegClass::Flags: return "flags";
    case RegClass::Sp: return "sp";
  }
  return "?";
}

Operand Operand::make_reg(Register r, bool read, bool write) {
  Operand op;
  op.kind = OperandKind::Reg;
  op.payload = r;
  op.read = read;
  op.write = write;
  return op;
}

Operand Operand::make_mem(MemOperand m, bool read, bool write) {
  Operand op;
  op.kind = OperandKind::Mem;
  op.payload = m;
  op.read = read;
  op.write = write;
  return op;
}

Operand Operand::make_imm(long long v) {
  Operand op;
  op.kind = OperandKind::Imm;
  op.payload = Immediate{v};
  op.read = true;
  return op;
}

Operand Operand::make_label(std::string name) {
  Operand op;
  op.kind = OperandKind::Label;
  op.payload = LabelRef{std::move(name)};
  op.read = true;
  return op;
}

std::string form_token(const Operand& op) {
  switch (op.kind) {
    case OperandKind::Reg: {
      const Register& r = op.reg();
      switch (r.cls) {
        case RegClass::Gpr:
        case RegClass::Sp:
          return r.width_bits == 32 ? "r32" : "r64";
        case RegClass::Vector: return support::format("v%d", r.width_bits);
        case RegClass::Predicate: return "p";
        case RegClass::Mask: return "k";
        case RegClass::Flags: return "f";
      }
      return "?";
    }
    case OperandKind::Mem:
      return support::format(op.mem().is_gather ? "g%d" : "m%d",
                             op.mem().width_bits);
    case OperandKind::Imm: return "i";
    case OperandKind::Label: return "l";
  }
  return "?";
}

std::string Instruction::form() const {
  std::string out = mnemonic;
  if (!ops.empty()) out += ' ';
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (i) out += ',';
    out += form_token(ops[i]);
  }
  return out;
}

std::vector<Register> Instruction::reads() const {
  std::vector<Register> out;
  for (const Operand& op : ops) {
    if (op.is_reg() && op.read) out.push_back(op.reg());
    if (op.is_mem()) {
      const MemOperand& m = op.mem();
      if (m.base) out.push_back(*m.base);
      if (m.index) out.push_back(*m.index);
    }
  }
  if (reads_flags) out.push_back(Register{RegClass::Flags, 0, 1});
  return out;
}

std::vector<Register> Instruction::writes() const {
  std::vector<Register> out;
  for (const Operand& op : ops) {
    if (op.is_reg() && op.write) out.push_back(op.reg());
    if (op.is_mem() && op.mem().base_writeback && op.mem().base)
      out.push_back(*op.mem().base);
  }
  if (writes_flags) out.push_back(Register{RegClass::Flags, 0, 1});
  return out;
}

const MemOperand* Instruction::mem_operand() const {
  for (const Operand& op : ops) {
    if (op.is_mem()) return &op.mem();
  }
  return nullptr;
}

}  // namespace incore::asmir
