#include "asmir/printer.hpp"

#include "support/strings.hpp"

namespace incore::asmir {

using support::format;

namespace {

std::string reg_text(const Register& r, Isa isa) {
  if (isa == Isa::X86_64) {
    if (r.cls == RegClass::Sp) return r.index == 1 ? "%rip" : "%rsp";
    return "%" + r.name(isa);
  }
  // AArch64.
  switch (r.cls) {
    case RegClass::Gpr:
      if (r.index == 31) return r.width_bits == 32 ? "wzr" : "xzr";
      return format("%c%d", r.width_bits == 32 ? 'w' : 'x', r.index);
    case RegClass::Sp: return "sp";
    case RegClass::Vector:
      if (r.width_bits <= 32) return format("s%d", r.index);
      if (r.width_bits <= 64) return format("d%d", r.index);
      return format("v%d.2d", r.index);
    case RegClass::Predicate: return format("p%d", r.index);
    case RegClass::Mask: return format("k%d", r.index);
    case RegClass::Flags: return "nzcv";
  }
  return "?";
}

std::string mem_text(const MemOperand& m, Isa isa) {
  if (isa == Isa::X86_64) {
    std::string out;
    if (m.displacement != 0) out += format("%lld", m.displacement);
    out += '(';
    if (m.base) out += reg_text(*m.base, isa);
    if (m.index) {
      out += ',';
      out += reg_text(*m.index, isa);
      out += format(",%d", m.scale);
    }
    out += ')';
    return out;
  }
  std::string out = "[";
  if (m.base) out += reg_text(*m.base, isa);
  if (m.index) {
    out += ", " + reg_text(*m.index, isa);
    if (m.scale > 1) {
      int shift = 0;
      for (int s = m.scale; s > 1; s >>= 1) ++shift;
      out += format(", lsl #%d", shift);
    }
  } else if (m.displacement != 0 && !m.base_writeback) {
    out += format(", #%lld", m.displacement);
  }
  out += ']';
  if (m.base_writeback) {
    // Render as post-index (the common compiler output shape).
    out += format(", #%lld", m.displacement);
  }
  return out;
}

}  // namespace

std::string to_text(const Operand& op, Isa isa) {
  switch (op.kind) {
    case OperandKind::Reg: return reg_text(op.reg(), isa);
    case OperandKind::Mem: return mem_text(op.mem(), isa);
    case OperandKind::Imm:
      return format(isa == Isa::X86_64 ? "$%lld" : "#%lld", op.imm().value);
    case OperandKind::Label: return op.label().name;
  }
  return "?";
}

std::string to_text(const Instruction& ins, Isa isa) {
  std::string out = ins.mnemonic;
  for (std::size_t i = 0; i < ins.ops.size(); ++i) {
    out += i == 0 ? " " : ", ";
    out += to_text(ins.ops[i], isa);
  }
  return out;
}

std::string to_text(const Program& prog) {
  std::string out;
  for (const Instruction& ins : prog.code) {
    out += "  " + to_text(ins, prog.isa) + "\n";
  }
  return out;
}

}  // namespace incore::asmir
