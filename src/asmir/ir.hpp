#pragma once
// Assembly intermediate representation.
//
// The IR is deliberately close to what OSACA operates on: a flat list of
// instructions with explicitly classified operands and read/write semantics.
// Both textual front ends (AT&T x86-64 and AArch64) lower into this one
// representation, so the analyzer, the MCA-style comparator and the
// execution testbed all share a single instruction form vocabulary.

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace incore::asmir {

enum class Isa : std::uint8_t { X86_64, AArch64 };

[[nodiscard]] const char* to_string(Isa isa);

/// Modeled SVE vector length in bits.  The analyzers treat VL as a fixed
/// compile-time constant (Grace implements 128-bit SVE); the parser sizes
/// z/p registers with it and the semantic layers use it for element-count
/// increments (incd = += VL/64).
inline constexpr int kSveVectorBits = 128;

/// Architectural register class.  Vector covers NEON/SVE/SSE/AVX registers;
/// sub-width accesses (w0 in x0, xmm0 in zmm0, d0 in v0) share a root so the
/// dependency analysis sees through partial accesses.
enum class RegClass : std::uint8_t {
  Gpr,        // x0..x30 / rax..r15
  Vector,     // v/q/d/s/h/b, z (SVE), xmm/ymm/zmm
  Predicate,  // SVE p0..p15
  Mask,       // AVX-512 k0..k7
  Flags,      // NZCV / RFLAGS
  Sp,         // stack pointer (kept separate: never renamed)
};

struct Register {
  RegClass cls = RegClass::Gpr;
  int index = 0;        // architectural number; 0 for Flags/Sp
  int width_bits = 64;  // access width of this mention

  /// Identity of the underlying register-file entry (aliasing classes).
  [[nodiscard]] std::uint32_t root_id() const {
    return (static_cast<std::uint32_t>(cls) << 8) | static_cast<std::uint32_t>(index);
  }
  bool operator==(const Register&) const = default;

  [[nodiscard]] std::string name(Isa isa) const;
};

/// Memory reference: base + index*scale + displacement.
struct MemOperand {
  std::optional<Register> base;
  std::optional<Register> index;
  int scale = 1;
  long long displacement = 0;
  int width_bits = 64;     // access size of the whole reference
  bool base_writeback = false;  // AArch64 pre/post-index updates the base
  bool is_gather = false;       // vector of indices (vgatherdpd / ld1d gather)

  bool operator==(const MemOperand&) const = default;
};

struct Immediate {
  long long value = 0;
  bool operator==(const Immediate&) const = default;
};

struct LabelRef {
  std::string name;
  bool operator==(const LabelRef&) const = default;
};

enum class OperandKind : std::uint8_t { Reg, Mem, Imm, Label };

struct Operand {
  OperandKind kind = OperandKind::Imm;
  std::variant<Register, MemOperand, Immediate, LabelRef> payload;
  bool read = false;
  bool write = false;

  [[nodiscard]] bool is_reg() const { return kind == OperandKind::Reg; }
  [[nodiscard]] bool is_mem() const { return kind == OperandKind::Mem; }
  [[nodiscard]] const Register& reg() const { return std::get<Register>(payload); }
  [[nodiscard]] Register& reg() { return std::get<Register>(payload); }
  [[nodiscard]] const MemOperand& mem() const { return std::get<MemOperand>(payload); }
  [[nodiscard]] MemOperand& mem() { return std::get<MemOperand>(payload); }
  [[nodiscard]] const Immediate& imm() const { return std::get<Immediate>(payload); }
  [[nodiscard]] const LabelRef& label() const { return std::get<LabelRef>(payload); }

  static Operand make_reg(Register r, bool read, bool write);
  static Operand make_mem(MemOperand m, bool read, bool write);
  static Operand make_imm(long long v);
  static Operand make_label(std::string name);
};

struct Instruction {
  std::string mnemonic;     // lowercase, size/condition suffixes preserved
  std::vector<Operand> ops;
  std::string raw;          // source text (trimmed)
  int line = 0;             // 1-based source line

  bool is_branch = false;
  bool is_load = false;
  bool is_store = false;
  bool reads_flags = false;
  bool writes_flags = false;
  /// SVE zeroing predication ("/z"): destination is write-only even though
  /// the instruction is predicated.  Merging ("/m") makes it read-write.
  bool merging_predication = false;

  /// Signature for machine-model lookup, e.g. "vfmadd231pd v512,v512,v512".
  [[nodiscard]] std::string form() const;

  /// All register mentions that the instruction reads (including memory
  /// address registers) and writes (including write-back bases).
  [[nodiscard]] std::vector<Register> reads() const;
  [[nodiscard]] std::vector<Register> writes() const;

  /// First memory operand, if any.
  [[nodiscard]] const MemOperand* mem_operand() const;
};

/// A parsed kernel: a straight-line loop body.
struct Program {
  Isa isa = Isa::AArch64;
  std::vector<Instruction> code;

  [[nodiscard]] std::size_t size() const { return code.size(); }
  [[nodiscard]] bool empty() const { return code.empty(); }
};

/// Render an operand-form token: r32/r64, v128/v256/v512, p, k, i, l, m<bits>.
[[nodiscard]] std::string form_token(const Operand& op);

}  // namespace incore::asmir
