#pragma once
// Textual assembly front ends.
//
// `parse` accepts the loop-body assembly of a kernel in the syntax the
// respective compilers emit (AT&T for x86-64, standard GNU syntax for
// AArch64), including comments, labels and directives, and lowers it into
// the shared IR.  If the text contains OSACA/LLVM-MCA style region markers
// ("OSACA-BEGIN"/"OSACA-END" or "LLVM-MCA-BEGIN"/"LLVM-MCA-END" inside
// comments), only the marked region is parsed.

#include <string_view>

#include "asmir/ir.hpp"

namespace incore::asmir {

/// Parse `text` for the given ISA.  Throws support::ParseError on malformed
/// input.  Labels, directives and comment-only lines are skipped.  For
/// x86-64, AT&T and Intel syntax are auto-detected (AT&T uses '%' register
/// prefixes).
[[nodiscard]] Program parse(std::string_view text, Isa isa);

/// Returns the region between analysis markers if both are present,
/// otherwise the full text.
[[nodiscard]] std::string_view extract_marked_region(std::string_view text);

namespace detail {
[[nodiscard]] Program parse_aarch64(std::string_view text);
[[nodiscard]] Program parse_x86(std::string_view text);
/// Intel-syntax front end (translates to AT&T internally).
[[nodiscard]] Program parse_x86_intel(std::string_view text);
/// Heuristic: instruction lines without '%' register prefixes.
[[nodiscard]] bool looks_like_intel_syntax(std::string_view text);
/// Exposed for tests: one-line Intel -> AT&T translation.
[[nodiscard]] std::string intel_to_att_line(std::string_view line);

/// True if the line is a label definition ("foo:", ".L42:").
[[nodiscard]] bool is_label_line(std::string_view line);
/// True if the line is an assembler directive (".align 4", ".cfi_...").
[[nodiscard]] bool is_directive_line(std::string_view line);
}  // namespace detail

}  // namespace incore::asmir
