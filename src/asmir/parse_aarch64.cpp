// AArch64 (A64 + NEON + SVE) assembly front end.
//
// Covers the subset emitted by GCC and (Arm-)Clang for streaming loop
// kernels: integer ALU with shift/extend modifiers, loads/stores with all
// addressing modes (offset, pre/post-index, register offset, SVE gather),
// NEON arithmetic with arrangement specifiers, SVE predicated arithmetic,
// predicate manipulation and branches.

#include <cctype>
#include <string>
#include <unordered_set>

#include "asmir/parser.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace incore::asmir::detail {
namespace {

using support::ParseError;
using support::parse_int;
using support::split_lines;
using support::split_toplevel;
using support::starts_with;
using support::to_lower;
using support::trim;

/// SVE vector length modelled for Neoverse V2 (and the only SVE width this
/// study needs): 128 bits.
constexpr int kSveBits = kSveVectorBits;

int arrangement_bits(std::string_view arr) {
  // "2d" -> 128, "4s" -> 128, "2s" -> 64, "16b" -> 128, ...
  long long n = 0;
  std::size_t i = 0;
  while (i < arr.size() && std::isdigit(static_cast<unsigned char>(arr[i]))) ++i;
  if (i > 0) (void)parse_int(arr.substr(0, i), n);
  if (i >= arr.size()) return 0;
  int elem = 0;
  switch (arr[i]) {
    case 'b': elem = 8; break;
    case 'h': elem = 16; break;
    case 's': elem = 32; break;
    case 'd': elem = 64; break;
    default: return 0;
  }
  if (n == 0) n = 1;  // "v0.d[1]" style lane references
  return static_cast<int>(n) * elem;
}

/// Parses a single register token (without memory brackets).  Returns false
/// if the token is not a register.
bool parse_register(std::string_view tok, Register& out, bool& merging,
                    bool& zeroing) {
  tok = trim(tok);
  merging = zeroing = false;
  // Predicates may carry a qualifier: "p0/m" or "p0/z"; registers may carry
  // an arrangement: "v0.2d", "z3.d", or a lane: "v0.d[1]".
  std::string t = to_lower(tok);
  // Strip lane selector.
  if (auto lb = t.find('['); lb != std::string::npos) t = t.substr(0, lb);
  std::string qualifier;
  if (auto slash = t.find('/'); slash != std::string::npos) {
    qualifier = t.substr(slash + 1);
    t = t.substr(0, slash);
  }
  std::string arr;
  if (auto dot = t.find('.'); dot != std::string::npos) {
    arr = t.substr(dot + 1);
    t = t.substr(0, dot);
  }
  if (t == "sp" || t == "wsp") {
    out = Register{RegClass::Sp, 0, t == "sp" ? 64 : 32};
    return true;
  }
  if (t == "xzr" || t == "wzr") {
    out = Register{RegClass::Gpr, 31, t == "xzr" ? 64 : 32};
    return true;
  }
  if (t.size() < 2) return false;
  char c = t[0];
  long long idx = 0;
  if (!parse_int(std::string_view(t).substr(1), idx)) return false;
  switch (c) {
    case 'x': out = Register{RegClass::Gpr, static_cast<int>(idx), 64}; return true;
    case 'w': out = Register{RegClass::Gpr, static_cast<int>(idx), 32}; return true;
    case 'v': {
      int bits = arr.empty() ? 128 : arrangement_bits(arr);
      out = Register{RegClass::Vector, static_cast<int>(idx), bits ? bits : 128};
      return true;
    }
    case 'q': out = Register{RegClass::Vector, static_cast<int>(idx), 128}; return true;
    case 'd': out = Register{RegClass::Vector, static_cast<int>(idx), 64}; return true;
    case 's': out = Register{RegClass::Vector, static_cast<int>(idx), 32}; return true;
    case 'h': out = Register{RegClass::Vector, static_cast<int>(idx), 16}; return true;
    case 'b': out = Register{RegClass::Vector, static_cast<int>(idx), 8}; return true;
    case 'z': out = Register{RegClass::Vector, static_cast<int>(idx), kSveBits}; return true;
    case 'p':
      out = Register{RegClass::Predicate, static_cast<int>(idx), kSveBits / 8};
      merging = qualifier == "m";
      zeroing = qualifier == "z";
      return true;
    default: return false;
  }
}

bool is_shift_or_extend(std::string_view tok) {
  tok = trim(tok);
  std::string t = to_lower(tok.substr(0, tok.find_first_of(" \t#")));
  static const std::unordered_set<std::string> kMods = {
      "lsl", "lsr", "asr", "ror", "uxtb", "uxth", "uxtw", "uxtx",
      "sxtb", "sxth", "sxtw", "sxtx", "mul"};  // "mul vl" in SVE offsets
  return kMods.contains(t);
}

/// Memory operand: "[x1]", "[x1, #16]", "[x1, x2]", "[x1, x2, lsl #3]",
/// "[x1, #16]!" (pre-index), "[x1, z2.d, lsl #3]" (gather),
/// "[x1, #1, mul vl]" (SVE).
MemOperand parse_mem(std::string_view tok, int line, std::string_view raw) {
  tok = trim(tok);
  bool pre_writeback = false;
  if (!tok.empty() && tok.back() == '!') {
    pre_writeback = true;
    tok.remove_suffix(1);
    tok = trim(tok);
  }
  if (tok.size() < 2 || tok.front() != '[' || tok.back() != ']')
    throw ParseError("malformed memory operand", line, std::string(raw));
  std::string_view inner = tok.substr(1, tok.size() - 2);
  auto parts = split_toplevel(inner, ',');
  MemOperand m;
  m.base_writeback = pre_writeback;
  bool have_base = false;
  long long mul_pending = 0;  // set when "#k, mul vl" seen
  for (std::string_view part : parts) {
    part = trim(part);
    if (part.empty()) continue;
    Register r;
    bool mrg = false, zro = false;
    long long imm = 0;
    if (parse_register(part, r, mrg, zro)) {
      if (!have_base && r.cls != RegClass::Vector) {
        m.base = r;
        have_base = true;
      } else {
        m.index = r;
        if (r.cls == RegClass::Vector) m.is_gather = true;
      }
    } else if (parse_int(part, imm)) {
      m.displacement = imm;
      mul_pending = imm;
    } else if (is_shift_or_extend(part)) {
      // "lsl #3" scales the index; "mul vl" scales the displacement.
      std::string low = to_lower(part);
      if (low.find("mul") == 0 && low.find("vl") != std::string::npos) {
        m.displacement = mul_pending * (kSveBits / 8);
      } else {
        long long amount = 0;
        auto hash = part.find('#');
        if (hash != std::string_view::npos &&
            parse_int(part.substr(hash), amount)) {
          m.scale = 1 << amount;
        }
      }
    } else {
      // Symbolic displacement (e.g. ":lo12:sym"); irrelevant to modeling.
    }
  }
  return m;
}

struct Mnemonics {
  std::unordered_set<std::string> loads{
      "ldr",  "ldur", "ldp",  "ldnp", "ldrb", "ldrh",  "ldrsw", "ldrsb",
      "ldrsh","ld1",  "ld2",  "ld3",  "ld4",  "ld1r",  "ld1d",  "ld1w",
      "ld1h", "ld1b", "ld1rd","ld1rw","ldff1d","ldnt1d","ldnt1w"};
  std::unordered_set<std::string> stores{
      "str", "stur", "stp", "stnp", "strb", "strh", "st1", "st2",
      "st3", "st4",  "st1d","st1w", "st1h", "st1b", "stnt1d", "stnt1w"};
  // Destination is read *and* written (accumulators / insert forms).
  std::unordered_set<std::string> dest_rw{
      "fmla", "fmls", "mla",  "mls",  "sdot", "udot", "fdot",
      "bfdot","movk", "fcmla","umlal","smlal","umlal2","smlal2",
      "fmlalb","fmlalt","ins", "adclb","adclt",
      // SVE element-count increments (incd x5 == x5 += VL/64): the
      // destination is an accumulating GPR, so it is read as well --
      // without this the dataflow pass sees a fresh definition and loses
      // the induction chain for whilelo-governed loops.
      "incb", "inch", "incw", "incd", "decb", "dech", "decw", "decd"};
  // Compare-only: no register destination, writes flags.
  std::unordered_set<std::string> compares{
      "cmp", "cmn", "tst", "fcmp", "fcmpe", "ccmp", "ccmn", "fccmp"};
  // Arithmetic that also sets flags (destination + NZCV).
  std::unordered_set<std::string> setflags{
      "adds", "subs", "ands", "bics", "negs", "adcs", "sbcs"};
  // Flag readers.
  std::unordered_set<std::string> readflags{
      "csel", "csinc", "csinv", "csneg", "cset",  "csetm", "fcsel",
      "adc",  "sbc",   "adcs",  "sbcs",  "cinc",  "cneg"};
  std::unordered_set<std::string> branches{
      "b", "br", "bl", "blr", "ret", "cbz", "cbnz", "tbz", "tbnz"};
};

const Mnemonics& mnemonics() {
  static const Mnemonics m;
  return m;
}

bool is_cond_branch(const std::string& mn) {
  return starts_with(mn, "b.");
}

/// Expands "{z0.d}" / "{v0.2d, v1.2d}" register-list syntax in an operand
/// list into individual register tokens.
void append_operand_tokens(std::string_view tok,
                           std::vector<std::string>& out) {
  tok = trim(tok);
  if (!tok.empty() && tok.front() == '{') {
    if (tok.back() != '}') return;  // malformed; caught later
    auto inner = split_toplevel(tok.substr(1, tok.size() - 2), ',');
    for (auto t : inner) out.emplace_back(trim(t));
  } else {
    out.emplace_back(tok);
  }
}

Instruction parse_instruction(std::string_view text, int line) {
  const Mnemonics& mn = mnemonics();
  Instruction ins;
  ins.raw = std::string(trim(text));
  ins.line = line;

  std::string_view s = trim(text);
  std::size_t sp = s.find_first_of(" \t");
  std::string mnem = to_lower(sp == std::string_view::npos ? s : s.substr(0, sp));
  ins.mnemonic = mnem;
  std::string_view rest = sp == std::string_view::npos ? std::string_view{} : trim(s.substr(sp));

  std::vector<std::string> toks;
  if (!rest.empty()) {
    for (auto t : split_toplevel(rest, ',')) append_operand_tokens(t, toks);
  }

  const bool load = mn.loads.contains(mnem);
  const bool store = mn.stores.contains(mnem);
  const bool cond_branch = is_cond_branch(mnem);
  const bool branch = cond_branch || mn.branches.contains(mnem);
  const bool compare = mn.compares.contains(mnem);
  ins.is_load = load;
  ins.is_store = store;
  ins.is_branch = branch;
  ins.writes_flags = compare || mn.setflags.contains(mnem) ||
                     starts_with(mnem, "while") || mnem == "ptest";
  ins.reads_flags = cond_branch || mn.readflags.contains(mnem) ||
                    mnem == "ccmp" || mnem == "ccmn" || mnem == "fccmp";

  bool merging_any = false;
  int data_bits = 0;      // accumulated width of transferred data regs
  bool seen_mem = false;
  std::size_t reg_ops_before_mem = 0;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    std::string_view tok = toks[i];
    tok = trim(tok);
    if (tok.empty()) continue;
    if (!tok.empty() && tok.front() == '[') {
      MemOperand m = parse_mem(tok, line, text);
      seen_mem = true;
      ins.ops.push_back(Operand::make_mem(m, load, store));
      continue;
    }
    Register r;
    bool mrg = false, zro = false;
    long long imm = 0;
    if (is_shift_or_extend(tok)) {
      // Keep the shift amount so shifted forms get a distinct signature.
      long long amount = 0;
      auto hash = tok.find('#');
      if (hash != std::string_view::npos)
        (void)parse_int(tok.substr(hash), amount);
      ins.ops.push_back(Operand::make_imm(amount));
      continue;
    }
    if (parse_register(tok, r, mrg, zro)) {
      merging_any |= mrg;
      bool is_dest = ins.ops.empty() ||
                     (load && !seen_mem);  // every reg before the address
      if (load && !seen_mem) {
        if (r.cls == RegClass::Predicate) {
          ins.ops.push_back(Operand::make_reg(r, true, false));
        } else {
          ins.ops.push_back(Operand::make_reg(r, false, true));
          data_bits += r.width_bits;
        }
        continue;
      }
      if (store && !seen_mem) {
        // Store data registers (and governing predicate) are reads.
        ins.ops.push_back(Operand::make_reg(r, true, false));
        if (r.cls != RegClass::Predicate) data_bits += r.width_bits;
        continue;
      }
      if (is_dest && !branch && !compare) {
        bool dest_read = mn.dest_rw.contains(mnem);
        ins.ops.push_back(Operand::make_reg(r, dest_read, true));
      } else if (r.cls == RegClass::Predicate) {
        ins.ops.push_back(Operand::make_reg(r, true, false));
      } else {
        ins.ops.push_back(Operand::make_reg(r, true, false));
      }
      if (!seen_mem) ++reg_ops_before_mem;
      continue;
    }
    if (parse_int(tok, imm)) {
      // A bare immediate after a "[...]" operand is a post-index update.
      if (seen_mem && (load || store)) {
        for (Operand& op : ins.ops) {
          if (op.is_mem()) {
            op.mem().base_writeback = true;
            op.mem().displacement = imm;  // applied after access
          }
        }
      } else {
        ins.ops.push_back(Operand::make_imm(imm));
      }
      continue;
    }
    // Floating-point immediates ("#1.0e+0") or label operands.
    if (!tok.empty() && tok.front() == '#') {
      ins.ops.push_back(Operand::make_imm(0));
    } else {
      ins.ops.push_back(Operand::make_label(std::string(tok)));
    }
  }

  ins.merging_predication = merging_any;

  // Merging predication means the destination's previous value flows in.
  if (merging_any && !ins.ops.empty() && ins.ops.front().is_reg() &&
      ins.ops.front().write) {
    ins.ops.front().read = true;
  }

  // Fix up memory access width from the transferred data.
  if ((load || store) && data_bits > 0) {
    for (Operand& op : ins.ops) {
      if (op.is_mem()) op.mem().width_bits = data_bits;
    }
  }
  return ins;
}

}  // namespace

Program parse_aarch64(std::string_view text) {
  Program prog;
  prog.isa = Isa::AArch64;
  auto lines = split_lines(text);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    // Strip comments: "//" and "@" style.
    if (auto pos = line.find("//"); pos != std::string_view::npos)
      line = line.substr(0, pos);
    if (auto pos = line.find('@'); pos != std::string_view::npos)
      line = line.substr(0, pos);
    line = trim(line);
    if (line.empty() || is_label_line(line) || is_directive_line(line)) continue;
    prog.code.push_back(parse_instruction(line, static_cast<int>(i + 1)));
  }
  return prog;
}

}  // namespace incore::asmir::detail
