#pragma once
// Canonical-form renderer for the assembly IR.
//
// Renders instructions back to parseable text.  The output is *canonical*,
// not byte-identical to the original source: AT&T size suffixes are dropped
// where operand widths imply them, NEON arrangement specifiers and SVE
// predicate qualifiers are normalized.  The guarantee (tested) is that
// re-parsing the rendered text yields instructions with identical form
// signatures and memory semantics -- enough for debugging dumps, the CLI,
// and golden tests.

#include <string>

#include "asmir/ir.hpp"

namespace incore::asmir {

[[nodiscard]] std::string to_text(const Operand& op, Isa isa);
[[nodiscard]] std::string to_text(const Instruction& ins, Isa isa);
[[nodiscard]] std::string to_text(const Program& prog);

}  // namespace incore::asmir
