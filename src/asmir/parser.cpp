#include "asmir/parser.hpp"

#include "support/strings.hpp"

namespace incore::asmir {

using support::split_lines;
using support::trim;

std::string_view extract_marked_region(std::string_view text) {
  // Look for a BEGIN marker and an END marker on separate lines; the region
  // is everything strictly between them.
  auto lines = split_lines(text);
  std::size_t begin_line = lines.size();
  std::size_t end_line = lines.size();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].find("OSACA-BEGIN") != std::string_view::npos ||
        lines[i].find("LLVM-MCA-BEGIN") != std::string_view::npos) {
      begin_line = i;
    } else if (lines[i].find("OSACA-END") != std::string_view::npos ||
               lines[i].find("LLVM-MCA-END") != std::string_view::npos) {
      end_line = i;
      break;
    }
  }
  if (begin_line >= end_line || end_line >= lines.size()) return text;
  const char* start = lines[begin_line + 1].data();
  const char* stop = lines[end_line].data();
  return std::string_view(start, static_cast<std::size_t>(stop - start));
}

Program parse(std::string_view text, Isa isa) {
  std::string_view region = extract_marked_region(text);
  switch (isa) {
    case Isa::AArch64: return detail::parse_aarch64(region);
    case Isa::X86_64:
      if (detail::looks_like_intel_syntax(region))
        return detail::parse_x86_intel(region);
      return detail::parse_x86(region);
  }
  return {};
}

namespace detail {

bool is_label_line(std::string_view line) {
  line = trim(line);
  if (line.empty()) return false;
  // A label is an identifier followed by ':' and nothing else (GCC never
  // puts an instruction on the same line as a label).
  std::size_t colon = line.find(':');
  if (colon == std::string_view::npos) return false;
  std::string_view rest = trim(line.substr(colon + 1));
  if (!rest.empty()) return false;
  std::string_view name = line.substr(0, colon);
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
          c == '$'))
      return false;
  }
  return !name.empty();
}

bool is_directive_line(std::string_view line) {
  line = trim(line);
  return !line.empty() && line.front() == '.' && !is_label_line(line);
}

}  // namespace detail

}  // namespace incore::asmir
