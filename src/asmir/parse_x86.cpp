// x86-64 AT&T-syntax assembly front end.
//
// Covers the subset GCC/Clang/ICX emit for streaming loop kernels: integer
// ALU, address generation, SSE/AVX/AVX-512 arithmetic (including masked
// forms and gathers), non-temporal stores and branches.  AT&T conventions:
// source(s) first, destination last; '%' register prefix; '$' immediates;
// disp(base,index,scale) memory references.

#include <cctype>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "asmir/parser.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace incore::asmir::detail {
namespace {

using support::ParseError;
using support::parse_int;
using support::split_lines;
using support::split_toplevel;
using support::starts_with;
using support::to_lower;
using support::trim;

/// 64-bit GPR name -> architectural index.
const std::unordered_map<std::string, int>& gpr64_index() {
  static const std::unordered_map<std::string, int> m = {
      {"rax", 0},  {"rcx", 1},  {"rdx", 2},  {"rbx", 3},
      {"rsi", 4},  {"rdi", 5},  {"rbp", 6},  {"r8", 8},
      {"r9", 9},   {"r10", 10}, {"r11", 11}, {"r12", 12},
      {"r13", 13}, {"r14", 14}, {"r15", 15}};
  return m;
}
const std::unordered_map<std::string, int>& gpr32_index() {
  static const std::unordered_map<std::string, int> m = {
      {"eax", 0},  {"ecx", 1},   {"edx", 2},   {"ebx", 3},
      {"esi", 4},  {"edi", 5},   {"ebp", 6},   {"r8d", 8},
      {"r9d", 9},  {"r10d", 10}, {"r11d", 11}, {"r12d", 12},
      {"r13d", 13},{"r14d", 14}, {"r15d", 15}};
  return m;
}

bool parse_register(std::string_view tok, Register& out) {
  tok = trim(tok);
  if (tok.empty() || tok.front() != '%') return false;
  std::string t = to_lower(tok.substr(1));
  if (t == "rsp") { out = Register{RegClass::Sp, 0, 64}; return true; }
  if (t == "esp") { out = Register{RegClass::Sp, 0, 32}; return true; }
  if (t == "rip") { out = Register{RegClass::Sp, 1, 64}; return true; }
  if (auto it = gpr64_index().find(t); it != gpr64_index().end()) {
    out = Register{RegClass::Gpr, it->second, 64};
    return true;
  }
  if (auto it = gpr32_index().find(t); it != gpr32_index().end()) {
    out = Register{RegClass::Gpr, it->second, 32};
    return true;
  }
  long long idx = 0;
  if (starts_with(t, "zmm") && parse_int(std::string_view(t).substr(3), idx)) {
    out = Register{RegClass::Vector, static_cast<int>(idx), 512};
    return true;
  }
  if (starts_with(t, "ymm") && parse_int(std::string_view(t).substr(3), idx)) {
    out = Register{RegClass::Vector, static_cast<int>(idx), 256};
    return true;
  }
  if (starts_with(t, "xmm") && parse_int(std::string_view(t).substr(3), idx)) {
    out = Register{RegClass::Vector, static_cast<int>(idx), 128};
    return true;
  }
  if (t.size() >= 2 && t[0] == 'k' && parse_int(std::string_view(t).substr(1), idx)) {
    out = Register{RegClass::Mask, static_cast<int>(idx), 64};
    return true;
  }
  return false;
}

/// "8(%rax,%rbx,4)" / "(%rax)" / "16(%rsp)" / "sym(%rip)" / "(,%zmm1,8)".
MemOperand parse_mem(std::string_view tok, int line, std::string_view raw) {
  tok = trim(tok);
  MemOperand m;
  std::size_t lp = tok.find('(');
  std::string_view disp = lp == std::string_view::npos ? tok : tok.substr(0, lp);
  disp = trim(disp);
  if (!disp.empty()) {
    long long d = 0;
    if (parse_int(disp, d)) m.displacement = d;
    // Symbolic displacements (labels) contribute no modeling information.
  }
  if (lp == std::string_view::npos) return m;
  std::size_t rp = tok.rfind(')');
  if (rp == std::string_view::npos || rp < lp)
    throw ParseError("malformed memory operand", line, std::string(raw));
  auto parts = split_toplevel(tok.substr(lp + 1, rp - lp - 1), ',');
  for (std::size_t i = 0; i < parts.size(); ++i) {
    std::string_view p = trim(parts[i]);
    if (p.empty()) continue;
    if (i == 0) {
      Register r;
      if (parse_register(p, r)) m.base = r;
    } else if (i == 1) {
      Register r;
      if (parse_register(p, r)) {
        m.index = r;
        if (r.cls == RegClass::Vector) m.is_gather = true;
      }
    } else if (i == 2) {
      long long s = 1;
      if (parse_int(p, s)) m.scale = static_cast<int>(s);
    }
  }
  return m;
}

struct Tables {
  // Integer mnemonics whose size suffix (b/w/l/q) should be stripped.
  std::unordered_set<std::string> suffixed{
      "mov", "add", "sub", "imul", "mul", "lea", "inc", "dec", "cmp",
      "test", "and", "or",  "xor", "not", "neg", "shl", "sal",  "shr",
      "sar", "rol", "ror", "push", "pop", "adc", "sbb", "bt", "cmov"};
  // Two-operand ALU: destination is read-modify-write.
  std::unordered_set<std::string> rmw{
      "add", "sub", "and", "or", "xor", "adc", "sbb", "shl", "sal",
      "shr", "sar", "rol", "ror", "imul"};
  std::unordered_set<std::string> rmw_unary{"inc", "dec", "neg", "not"};
  // Compare-only (flags destination).
  std::unordered_set<std::string> compares{"cmp", "test", "ucomisd",
                                           "comisd", "vucomisd", "vcomisd"};
  // Integer ops that write flags.
  std::unordered_set<std::string> writeflags{
      "add", "sub", "and", "or", "xor", "inc", "dec", "neg", "imul",
      "shl", "sal", "shr", "sar", "cmp", "test", "adc", "sbb"};
  // FMA family: destination is also a source.
  // (vfmadd/vfnmadd/vfmsub 132/213/231 variants share the property.)
  std::unordered_set<std::string> branches{
      "jmp", "je", "jne", "jz", "jnz", "jg", "jge", "jl", "jle", "ja",
      "jae", "jb", "jbe", "js", "jns", "jo", "jno", "jp", "jnp", "call",
      "ret", "loop"};
};

const Tables& tables() {
  static const Tables t;
  return t;
}

bool is_fma(const std::string& mn) {
  return mn.find("fmadd") != std::string::npos ||
         mn.find("fmsub") != std::string::npos ||
         mn.find("fnmadd") != std::string::npos ||
         mn.find("fnmsub") != std::string::npos;
}

/// Strip AT&T size suffix from integer mnemonics ("addq" -> "add").
std::string normalize_mnemonic(std::string mn) {
  const Tables& t = tables();
  if (mn.size() < 2) return mn;
  char last = mn.back();
  if (last != 'b' && last != 'w' && last != 'l' && last != 'q') return mn;
  std::string base = mn.substr(0, mn.size() - 1);
  if (t.suffixed.contains(base)) return base;
  // cmovCC has its own suffix handling: "cmovneq" -> "cmovne".
  if (starts_with(base, "cmov")) return base;
  return mn;
}

int mem_width_from_suffix(const std::string& raw_mnemonic) {
  switch (raw_mnemonic.back()) {
    case 'b': return 8;
    case 'w': return 16;
    case 'l': return 32;
    case 'q': return 64;
    default: return 0;
  }
}

Instruction parse_instruction(std::string_view text, int line) {
  const Tables& tbl = tables();
  Instruction ins;
  ins.raw = std::string(trim(text));
  ins.line = line;

  std::string_view s = trim(text);
  std::size_t sp = s.find_first_of(" \t");
  std::string raw_mnem =
      to_lower(sp == std::string_view::npos ? s : s.substr(0, sp));
  std::string mnem = normalize_mnemonic(raw_mnem);
  ins.mnemonic = mnem;
  std::string_view rest =
      sp == std::string_view::npos ? std::string_view{} : trim(s.substr(sp));

  const bool fma = is_fma(mnem);
  const bool compare = tbl.compares.contains(mnem);
  const bool branch = tbl.branches.contains(mnem);
  ins.is_branch = branch;
  ins.writes_flags = tbl.writeflags.contains(mnem);
  ins.reads_flags =
      (branch && mnem != "jmp" && mnem != "call" && mnem != "ret") ||
      starts_with(mnem, "cmov") || starts_with(mnem, "set") ||
      mnem == "adc" || mnem == "sbb";

  std::vector<std::string_view> toks;
  std::vector<Register> masks;  // {%k1} / {%k1}{z} opmask annotations
  bool mask_zeroing = false;
  if (!rest.empty()) {
    for (auto t : split_toplevel(rest, ',')) {
      t = trim(t);
      // Peel opmask annotations off the operand.
      while (!t.empty() && t.back() == '}') {
        auto lb = t.rfind('{');
        if (lb == std::string_view::npos) break;
        std::string_view ann = t.substr(lb + 1, t.size() - lb - 2);
        if (ann == "z") {
          mask_zeroing = true;
        } else {
          Register k;
          if (parse_register(ann, k)) masks.push_back(k);
        }
        t = trim(t.substr(0, lb));
      }
      if (!t.empty()) toks.push_back(t);
    }
  }

  // Classify each operand; remember positions.
  struct Parsed {
    Operand op;
  };
  std::vector<Operand> ops;
  ops.reserve(toks.size());
  for (std::string_view tok : toks) {
    Register r;
    long long imm = 0;
    if (parse_register(tok, r)) {
      ops.push_back(Operand::make_reg(r, /*read=*/true, /*write=*/false));
    } else if (!tok.empty() && tok.front() == '$') {
      (void)parse_int(tok, imm);
      ops.push_back(Operand::make_imm(imm));
    } else if (tok.find('(') != std::string_view::npos ||
               std::isdigit(static_cast<unsigned char>(tok.front())) ||
               tok.front() == '-') {
      ops.push_back(Operand::make_mem(parse_mem(tok, line, text), true, false));
    } else if (branch) {
      ops.push_back(Operand::make_label(std::string(tok)));
    } else {
      // Bare symbol reference (RIP-relative without parens).
      ops.push_back(Operand::make_mem(MemOperand{}, true, false));
    }
  }

  // Destination semantics: last operand, unless compare/branch.
  if (!ops.empty() && !compare && !branch && mnem != "push") {
    Operand& dst = ops.back();
    bool dest_read = false;
    if (tbl.rmw.contains(mnem) && ops.size() >= 2) dest_read = true;
    if (tbl.rmw_unary.contains(mnem) && ops.size() == 1) dest_read = true;
    if (fma) dest_read = true;
    if (starts_with(mnem, "cmov")) dest_read = true;  // merge semantics
    if (!masks.empty() && !mask_zeroing) dest_read = true;  // merge-masking
    if (dst.is_reg()) {
      dst.read = dest_read;
      dst.write = true;
    } else if (dst.is_mem()) {
      dst.read = dest_read;  // RMW to memory reads the location
      dst.write = true;
    }
  }

  for (const Register& k : masks)
    ops.push_back(Operand::make_reg(k, true, false));

  // push/pop: stack pointer update + memory access.
  if (mnem == "push") {
    MemOperand m;
    m.base = Register{RegClass::Sp, 0, 64};
    m.width_bits = 64;
    ops.push_back(Operand::make_mem(m, false, true));
  } else if (mnem == "pop") {
    MemOperand m;
    m.base = Register{RegClass::Sp, 0, 64};
    m.width_bits = 64;
    ops.push_back(Operand::make_mem(m, true, false));
  }

  ins.ops = std::move(ops);

  // Loads / stores / access widths.
  int reg_width = 0;
  for (const Operand& op : ins.ops) {
    if (op.is_reg() && op.reg().cls == RegClass::Vector)
      reg_width = std::max(reg_width, op.reg().width_bits);
    else if (op.is_reg() && reg_width == 0)
      reg_width = op.reg().width_bits;
  }
  int suffix_width = mem_width_from_suffix(raw_mnem);
  // Scalar SSE/AVX loads move 64 bits regardless of register width.
  if (support::ends_with(mnem, "sd") && reg_width >= 128) suffix_width = 64;
  if (support::ends_with(mnem, "ss") && reg_width >= 128) suffix_width = 32;
  for (Operand& op : ins.ops) {
    if (!op.is_mem()) continue;
    op.mem().width_bits =
        suffix_width ? suffix_width : (reg_width ? reg_width : 64);
    if (mnem == "lea") {
      // lea computes an address: no memory access at all.
      op.read = op.write = false;
    } else {
      if (op.read) ins.is_load = true;
      if (op.write) ins.is_store = true;
    }
  }
  return ins;
}

}  // namespace

Program parse_x86(std::string_view text) {
  Program prog;
  prog.isa = Isa::X86_64;
  auto lines = split_lines(text);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    if (auto pos = line.find('#'); pos != std::string_view::npos)
      line = line.substr(0, pos);
    line = trim(line);
    if (line.empty() || is_label_line(line) || is_directive_line(line)) continue;
    prog.code.push_back(parse_instruction(line, static_cast<int>(i + 1)));
  }
  return prog;
}

}  // namespace incore::asmir::detail
