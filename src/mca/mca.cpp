#include "mca/mca.hpp"

namespace incore::mca {

exec::PipelineConfig sched_model_config(uarch::Micro micro) {
  exec::PipelineConfig cfg;
  cfg.dynamic_port_selection = false;  // static resource binding
  cfg.move_elimination = false;
  cfg.zero_idiom_elimination = false;
  cfg.taken_branch_bubble = 0.0;  // MCA assumes a fully unrolled stream
  cfg.store_address_split = false;  // stores gate on all operands
  switch (micro) {
    case uarch::Micro::NeoverseV2:
      // LLVM falls back to a generic Neoverse scheduling description:
      // FP/ASIMD latencies are one to two cycles higher than V2 silicon,
      // L1 load-to-use is overstated, and the resource groups expose only
      // two FP/ASIMD pipes instead of four.
      cfg.fp_latency_add = 2.0;
      cfg.load_latency_add = 2.0;
      cfg.fp_port_limit = 3;   // generic model exposes 3 FP pipes
      cfg.mem_port_limit = 2;  // ...and two LD/ST pipes
      
      break;
    case uarch::Micro::GoldenCove:
      // The Golden Cove model inherits conservative Ice Lake-era latencies.
      cfg.fp_latency_add = 2.0;
      cfg.load_latency_add = 2.0;
      cfg.dispatch_width_override = 5;
      break;
    case uarch::Micro::Zen4:
      // The Zen 4 scheduling model is the best maintained of the three --
      // only mildly conservative.
      cfg.fp_latency_add = 0.5;
      cfg.load_latency_add = 1.0;
      cfg.dispatch_width_override = 5;  // LLVM Znver4 IssueWidth
      break;
  }
  return cfg;
}

Result simulate(const asmir::Program& prog, const uarch::MachineModel& mm,
                int iterations) {
  exec::PipelineConfig cfg = sched_model_config(mm.micro());
  cfg.iterations = iterations;
  exec::PipelineResult r = exec::simulate_loop(prog, mm, cfg);
  Result out;
  out.cycles_per_iteration = r.cycles_per_iteration;
  out.resource_pressure = r.port_utilization;
  out.port_cycles = r.port_cycles;
  out.uops_per_iteration = r.uops_per_iteration;
  out.dispatch_width = r.dispatch_width;
  return out;
}

}  // namespace incore::mca
