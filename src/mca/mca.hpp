#pragma once
// LLVM-MCA-style comparator model.
//
// LLVM's Machine Code Analyzer simulates a loop kernel against the
// compiler's *scheduling models*.  Its characteristic deviations from real
// silicon, reproduced here:
//
//  * resources are selected statically when an instruction is dispatched
//    (cumulative-use counters), not dynamically at issue -- causing
//    avoidable port conflicts;
//  * the scheduling tables are secondhand: correct-ish for Zen 4, but
//    pessimistic for Golden Cove and clearly off for Neoverse V2 (LLVM
//    reuses a generic Neoverse description with inflated FP latencies);
//  * rename-stage move elimination and zero-idiom dependency breaking are
//    not modeled;
//  * the instruction stream is treated as fully unrolled: no taken-branch
//    penalty at all (the source of its occasional *under*-predictions).
//
// Together these reproduce the paper's Fig. 3 observation: LLVM-MCA
// predicts slower than the measurement for ~3/4 of the kernels, with the
// largest errors on Neoverse V2.

#include "asmir/ir.hpp"
#include "exec/pipeline.hpp"
#include "uarch/model.hpp"

namespace incore::mca {

struct Result {
  double cycles_per_iteration = 0.0;
  std::vector<double> resource_pressure;  // per model port
  /// Realized per-port busy cycles per iteration and the dispatch width the
  /// scheduling model advertises (for the prediction audit's attribution).
  std::vector<double> port_cycles;
  double uops_per_iteration = 0.0;
  int dispatch_width = 0;
};

/// The per-microarchitecture LLVM scheduling-model approximation.
[[nodiscard]] exec::PipelineConfig sched_model_config(uarch::Micro micro);

/// Predict cycles/iteration for a kernel loop, LLVM-MCA style.
[[nodiscard]] Result simulate(const asmir::Program& prog,
                              const uarch::MachineModel& mm,
                              int iterations = 100);

}  // namespace incore::mca
